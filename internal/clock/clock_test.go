package clock

import (
	"math/rand"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/sim"
)

func TestSimClock(t *testing.T) {
	k := sim.New(1)
	c := Sim{K: k}
	start := c.Now()
	var firedAt time.Time
	c.AfterFunc(5*time.Second, func() { firedAt = c.Now() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt.Sub(start) != 5*time.Second {
		t.Fatalf("fired at +%v, want +5s", firedAt.Sub(start))
	}
}

func TestSimTimerStop(t *testing.T) {
	k := sim.New(1)
	c := Sim{K: k}
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTickerFiresRepeatedly(t *testing.T) {
	k := sim.New(1)
	c := Sim{K: k}
	n := 0
	tk := NewTicker(c, time.Second, func() { n++ })
	if err := k.RunFor(10*time.Second + 500*time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
	tk.Stop()
	if err := k.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if n != 10 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	k := sim.New(1)
	tk := NewTicker(Sim{K: k}, time.Second, func() {})
	tk.Stop()
	tk.Stop() // must not panic
}

func TestScaledClockCompresses(t *testing.T) {
	k := sim.New(1)
	c := Scaled{Inner: Sim{K: k}, Factor: 10}
	var firedAt time.Time
	c.AfterFunc(10*time.Second, func() { firedAt = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := firedAt.Sub(sim.Epoch); got != time.Second {
		t.Fatalf("scaled delay = %v, want 1s", got)
	}
}

func TestScaledClockZeroFactor(t *testing.T) {
	k := sim.New(1)
	c := Scaled{Inner: Sim{K: k}, Factor: 0}
	var firedAt time.Time
	c.AfterFunc(time.Second, func() { firedAt = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := firedAt.Sub(sim.Epoch); got != time.Second {
		t.Fatalf("factor 0 should behave as 1: got %v", got)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := Real{}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
}

// chanEvent is a minimal Event for exercising Schedule paths.
type chanEvent struct {
	fired int
	done  chan struct{}
}

func (e *chanEvent) Fire() {
	e.fired++
	if e.done != nil {
		close(e.done)
	}
}

func TestSimSchedule(t *testing.T) {
	k := sim.New(1)
	c := Sim{K: k}
	ev := &chanEvent{}
	c.Schedule(3*time.Second, ev)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ev.fired != 1 {
		t.Fatalf("fired = %d, want 1", ev.fired)
	}
	if got := k.Now().Sub(sim.Epoch); got != 3*time.Second {
		t.Fatalf("fired at +%v, want +3s", got)
	}
}

func TestScaledSchedule(t *testing.T) {
	k := sim.New(1)
	c := Scaled{Inner: Sim{K: k}, Factor: 10}
	ev := &chanEvent{}
	c.Schedule(10*time.Second, ev)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := k.Now().Sub(sim.Epoch); got != time.Second {
		t.Fatalf("scaled Schedule delay = %v, want 1s", got)
	}
}

func TestRealSchedule(t *testing.T) {
	c := Real{}
	ev := &chanEvent{done: make(chan struct{})}
	c.Schedule(time.Millisecond, ev)
	select {
	case <-ev.done:
	case <-time.After(2 * time.Second):
		t.Fatal("real Schedule never fired")
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := 10 * time.Second
	for i := 0; i < 1000; i++ {
		d := Jitter(rng, base, 0.2)
		if d < 8*time.Second || d > 12*time.Second {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if Jitter(rng, base, 0) != base {
		t.Fatal("zero-frac jitter changed duration")
	}
}
