// Package antenna models the tracking antenna the str component drives:
// slew-rate-limited az/el pointing, pointing error, and the on-target test
// that decides whether the communication link holds. If a failure in the
// tracking subsystem keeps the antenna off target for too long, the link
// breaks and the pass is lost — the paper's §5.2 downtime-cost argument.
package antenna

import (
	"errors"
	"math"
	"time"
)

// ErrBadSlewRate rejects non-positive slew rates.
var ErrBadSlewRate = errors.New("antenna: slew rate must be positive")

// Model is a two-axis antenna positioner. It is a pure state machine: the
// caller (the str component) advances it with explicit time steps, so it
// works identically under simulated and real time.
type Model struct {
	// SlewRateRad is the maximum axis speed, rad/s.
	SlewRateRad float64
	// BeamwidthRad is the half-power beamwidth; the link holds while the
	// pointing error is within half of it.
	BeamwidthRad float64

	azRad float64
	elRad float64
}

// New constructs an antenna parked at azimuth 0, elevation 0.
func New(slewRateRad, beamwidthRad float64) (*Model, error) {
	if slewRateRad <= 0 {
		return nil, ErrBadSlewRate
	}
	return &Model{SlewRateRad: slewRateRad, BeamwidthRad: beamwidthRad}, nil
}

// Azimuth returns the current azimuth, [0, 2pi).
func (m *Model) Azimuth() float64 { return m.azRad }

// Elevation returns the current elevation.
func (m *Model) Elevation() float64 { return m.elRad }

// Step slews toward the target for dt, each axis limited by the slew rate.
// Azimuth takes the short way around.
func (m *Model) Step(targetAz, targetEl float64, dt time.Duration) {
	maxMove := m.SlewRateRad * dt.Seconds()

	dAz := wrapPi(targetAz - m.azRad)
	if math.Abs(dAz) <= maxMove {
		m.azRad = targetAz
	} else {
		m.azRad += math.Copysign(maxMove, dAz)
	}
	m.azRad = wrap2Pi(m.azRad)

	dEl := targetEl - m.elRad
	if math.Abs(dEl) <= maxMove {
		m.elRad = targetEl
	} else {
		m.elRad += math.Copysign(maxMove, dEl)
	}
}

// PointingError returns the angular separation between the boresight and
// the target direction.
func (m *Model) PointingError(targetAz, targetEl float64) float64 {
	// Angular separation on the az/el sphere.
	cosSep := math.Sin(m.elRad)*math.Sin(targetEl) +
		math.Cos(m.elRad)*math.Cos(targetEl)*math.Cos(targetAz-m.azRad)
	if cosSep > 1 {
		cosSep = 1
	}
	if cosSep < -1 {
		cosSep = -1
	}
	return math.Acos(cosSep)
}

// OnTarget reports whether the link geometry holds (pointing error within
// half the beamwidth).
func (m *Model) OnTarget(targetAz, targetEl float64) bool {
	return m.PointingError(targetAz, targetEl) <= m.BeamwidthRad/2
}

// Park drives the antenna to the stow position instantly (used between
// passes; stow time is not on the recovery path).
func (m *Model) Park() {
	m.azRad = 0
	m.elRad = 0
}

// wrapPi wraps an angle into (-pi, pi].
func wrapPi(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// wrap2Pi wraps an angle into [0, 2pi).
func wrap2Pi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}
