package antenna

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRejectsBadSlewRate(t *testing.T) {
	if _, err := New(0, 0.1); err != ErrBadSlewRate {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(-1, 0.1); err != ErrBadSlewRate {
		t.Fatalf("err = %v", err)
	}
}

func TestStepReachesTarget(t *testing.T) {
	m, err := New(0.1, 0.05) // 0.1 rad/s
	if err != nil {
		t.Fatal(err)
	}
	target := 0.5
	for i := 0; i < 10; i++ {
		m.Step(target, target, time.Second)
	}
	if math.Abs(m.Azimuth()-target) > 1e-12 || math.Abs(m.Elevation()-target) > 1e-12 {
		t.Fatalf("az/el = %v/%v, want %v", m.Azimuth(), m.Elevation(), target)
	}
}

func TestStepRespectsSlewRate(t *testing.T) {
	m, _ := New(0.1, 0.05)
	m.Step(1.0, 1.0, time.Second)
	if math.Abs(m.Azimuth()-0.1) > 1e-12 {
		t.Fatalf("az moved %v in 1s at 0.1 rad/s", m.Azimuth())
	}
	if math.Abs(m.Elevation()-0.1) > 1e-12 {
		t.Fatalf("el moved %v in 1s at 0.1 rad/s", m.Elevation())
	}
}

func TestAzimuthTakesShortWay(t *testing.T) {
	m, _ := New(0.5, 0.05)
	// From az ~0 to az 6.0 rad: short way is backwards through 2pi.
	m.Step(6.0, 0, time.Second)
	if m.Azimuth() < 5.7 {
		t.Fatalf("az = %v; should have wrapped backwards toward 6.0", m.Azimuth())
	}
}

func TestPointingErrorZeroOnBoresight(t *testing.T) {
	m, _ := New(1, 0.05)
	m.Step(1.2, 0.8, time.Minute) // reaches target
	if e := m.PointingError(1.2, 0.8); e > 1e-9 {
		t.Fatalf("error on boresight = %v", e)
	}
	if !m.OnTarget(1.2, 0.8) {
		t.Fatal("not on target at zero error")
	}
}

func TestOnTargetBeamwidth(t *testing.T) {
	m, _ := New(1, 0.1) // half-beamwidth 0.05
	m.Step(0, 0, time.Second)
	if !m.OnTarget(0.04, 0) {
		t.Fatal("within half beamwidth but off target")
	}
	if m.OnTarget(0.2, 0) {
		t.Fatal("outside beamwidth but on target")
	}
}

func TestPark(t *testing.T) {
	m, _ := New(1, 0.05)
	m.Step(1, 1, time.Minute)
	m.Park()
	if m.Azimuth() != 0 || m.Elevation() != 0 {
		t.Fatal("Park did not stow")
	}
}

// Property: a single step never moves an axis more than slew*dt, and
// repeated stepping converges monotonically to the target elevation.
func TestPropertySlewBound(t *testing.T) {
	f := func(targetRaw, dtMs uint16) bool {
		m, _ := New(0.2, 0.05)
		target := float64(targetRaw) / 65536 * math.Pi / 2
		dt := time.Duration(dtMs%5000) * time.Millisecond
		prev := m.Elevation()
		m.Step(0, target, dt)
		moved := math.Abs(m.Elevation() - prev)
		return moved <= 0.2*dt.Seconds()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pointing error is symmetric in its arguments' roles and always
// within [0, pi].
func TestPropertyPointingErrorRange(t *testing.T) {
	f := func(azRaw, elRaw uint16) bool {
		m, _ := New(1, 0.05)
		az := float64(azRaw) / 65536 * 2 * math.Pi
		el := float64(elRaw)/65536*math.Pi - math.Pi/2
		e := m.PointingError(az, el)
		return e >= 0 && e <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
