package mercury

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/trace"
)

// ageOutPbcom drives repeated fedr failures so pbcom accumulates aging
// (each severed fedr connection ages it; the default limit is 6).
func ageOutPbcom(t *testing.T, sys *System, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if _, err := sys.MeasureRecovery(Fault{Component: "fedr"}, 2*time.Minute); err != nil {
			t.Fatalf("fedr round %d: %v", i, err)
		}
		if err := sys.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithoutRejuvenationPbcomAgesOut(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 21, TreeName: "IV", Policy: PolicyEscalating})
	ageOutPbcom(t, sys, 6)
	_ = sys.RunFor(2 * time.Minute)
	aged := sys.Log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentDown && e.Component == "pbcom" &&
			strings.Contains(e.Detail, "aged out")
	})
	if len(aged) == 0 {
		t.Fatal("pbcom never aged out without rejuvenation")
	}
	// FD/REC still recover the aged-out pbcom (it is an organic failure).
	if !sys.Mgr.AllServing(sys.Components()...) {
		_ = sys.RunFor(time.Minute)
		if !sys.Mgr.AllServing(sys.Components()...) {
			t.Fatal("station did not recover from the aging failure")
		}
	}
}

func TestRejuvenationPreventsAgingFailure(t *testing.T) {
	rec := core.DefaultRECParams()
	rec.Rejuvenate = true
	sys := bootSystem(t, Config{
		Seed: 22, TreeName: "IV", Policy: PolicyEscalating, RECParams: &rec,
	})
	ageOutPbcom(t, sys, 6)
	_ = sys.RunFor(2 * time.Minute)

	rejuv := sys.Log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.Note && strings.Contains(e.Detail, "rejuvenation")
	})
	if len(rejuv) == 0 {
		t.Fatal("no proactive rejuvenation occurred")
	}
	aged := sys.Log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentDown && e.Component == "pbcom" &&
			strings.Contains(e.Detail, "aged out")
	})
	if len(aged) != 0 {
		t.Fatalf("pbcom aged out despite rejuvenation: %v", aged)
	}
}

func TestRejuvenationRespectsIdleCheck(t *testing.T) {
	rec := core.DefaultRECParams()
	rec.Rejuvenate = true
	rec.IdleCheck = func() bool { return false } // a pass is always active
	sys := bootSystem(t, Config{
		Seed: 23, TreeName: "IV", Policy: PolicyEscalating, RECParams: &rec,
	})
	ageOutPbcom(t, sys, 5)
	_ = sys.RunFor(time.Minute)
	rejuv := sys.Log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.Note && strings.Contains(e.Detail, "rejuvenation")
	})
	if len(rejuv) != 0 {
		t.Fatal("rejuvenation restarted during a critical window")
	}
}

func TestSuspectBeaconReachesREC(t *testing.T) {
	rec := core.DefaultRECParams()
	rec.Rejuvenate = true
	sys := bootSystem(t, Config{
		Seed: 24, TreeName: "IV", Policy: PolicyEscalating, RECParams: &rec,
	})
	// Age pbcom to exactly the suspect threshold (ageScore ≥ 0.8 at 5/6).
	ageOutPbcom(t, sys, 5)
	_ = sys.RunFor(time.Minute)
	st, err := sys.Mgr.State("pbcom")
	if err != nil || st != proc.Running {
		t.Fatalf("pbcom state = %v, %v", st, err)
	}
	// The proactive restart must have reset the incarnation.
	if n, _ := sys.Mgr.Restarts("pbcom"); n == 0 {
		t.Fatal("pbcom never proactively restarted")
	}
}
