package mercury_test

// The benchmark harness regenerates each of the paper's tables and figures
// under `go test -bench`. Every Table-2/4 cell is a sub-benchmark whose
// iterations are full independent recovery trials (fresh simulated station
// per iteration, as in the paper's 100-experiment cells); the measured
// mean time-to-recover is attached as the custom metric mttr_s. Ablation
// benchmarks vary the design parameters DESIGN.md calls out (detection
// period, restart contention, restart budget).

import (
	"context"
	"fmt"
	"testing"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/experiment"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/orbit"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// benchCell runs one recovery trial per iteration and reports the mean
// simulated MTTR as mttr_s.
func benchCell(b *testing.B, cell experiment.Cell, baseSeed int64) {
	b.Helper()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		sys, err := mercury.NewSystem(mercury.Config{
			Seed:     baseSeed + int64(i)*104729,
			TreeName: cell.Tree,
			Policy:   cell.Policy,
			FaultyP:  cell.FaultyP,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Boot(); err != nil {
			b.Fatal(err)
		}
		d, err := sys.MeasureRecovery(
			mercury.Fault{Component: cell.Component, Cure: cell.Cure}, 5*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		total += d
	}
	b.ReportMetric(total.Seconds()/float64(b.N), "mttr_s")
}

// BenchmarkTable2 regenerates Table 2: recovery time per failed component
// under tree I (whole-system restart) and tree II (depth augmentation).
func BenchmarkTable2(b *testing.B) {
	for _, tree := range []string{"I", "II"} {
		for _, comp := range []string{"mbus", "ses", "str", "rtu", "fedrcom"} {
			cell := experiment.Cell{Tree: tree, Policy: mercury.PolicyPerfect, Component: comp}
			b.Run(fmt.Sprintf("tree%s/%s", tree, comp), func(b *testing.B) {
				benchCell(b, cell, 20_000)
			})
		}
	}
}

// BenchmarkTable4 regenerates Table 4: all six tree/oracle rows.
func BenchmarkTable4(b *testing.B) {
	for _, spec := range experiment.Table4Rows() {
		comps := []string{"mbus", "ses", "str", "rtu", "fedr", "pbcom"}
		if spec.Tree == "I" || spec.Tree == "II" {
			comps = []string{"mbus", "ses", "str", "rtu", "fedrcom"}
		}
		for _, comp := range comps {
			var cure []string
			if comp == "pbcom" && spec.Policy == mercury.PolicyFaulty {
				cure = []string{"fedr", "pbcom"}
			}
			cell := experiment.Cell{
				Tree: spec.Tree, Policy: spec.Policy, FaultyP: spec.FaultyP,
				Component: comp, Cure: cure,
			}
			b.Run(fmt.Sprintf("%s/%s", spec.Label, comp), func(b *testing.B) {
				benchCell(b, cell, 40_000)
			})
		}
	}
}

// BenchmarkTable4Parallel regenerates a reduced Table 4 through the trial
// runner at increasing worker counts. On a multi-core machine the
// per-iteration wall clock should drop roughly linearly with workers
// (the acceptance bar is ≥2× at workers=4 vs workers=1 on ≥4 cores)
// while every measured number stays bit-identical — see
// TestParallelTable4MatchesSequential.
func BenchmarkTable4Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiment.Table4Cfg(context.Background(), experiment.RunConfig{
					Trials: 4, BaseSeed: 50_000, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 6 {
					b.Fatalf("rows = %d", len(rows))
				}
			}
		})
	}
}

// BenchmarkRunCellParallel isolates the runner fan-out on a single hot
// cell (tree I, whole-system restarts — the most expensive trials).
func BenchmarkRunCellParallel(b *testing.B) {
	cell := experiment.Cell{Tree: "I", Policy: mercury.PolicyPerfect, Component: "rtu"}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunCellCfg(context.Background(), cell, experiment.RunConfig{
					Trials: 16, BaseSeed: 51_000, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParallelTable4MatchesSequential is the determinism gate for the
// trial runner: the fully rendered Table 4 must be byte-identical between
// a sequential run and a wide parallel run of the same seed.
func TestParallelTable4MatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func(workers int) string {
		rows, err := experiment.Table4Cfg(context.Background(), experiment.RunConfig{
			Trials: 2, BaseSeed: 45_000, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return experiment.RenderRows(rows, "Table 4")
	}
	seq := render(1)
	for _, workers := range []int{2, 8} {
		if par := render(workers); par != seq {
			t.Fatalf("workers=%d output diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s",
				workers, seq, par)
		}
	}
}

// BenchmarkTable1 regenerates Table 1's failure-law calibration: sampling
// throughput of the per-component MTTF laws.
func BenchmarkTable1(b *testing.B) {
	rng := sim.New(1).Rand()
	for comp, mttf := range experiment.PaperMTTF {
		law := fault.LogNormal{M: mttf, CV: 0.25}
		b.Run(comp, func(b *testing.B) {
			var sum time.Duration
			for i := 0; i < b.N; i++ {
				sum += law.Sample(rng)
			}
			if b.N > 0 {
				b.ReportMetric(sum.Hours()/float64(b.N), "mttf_hours")
			}
		})
	}
}

// BenchmarkTable3Figures regenerates the transformation summary and the
// tree renders of figures 2-6 (construction + render throughput).
func BenchmarkTable3Figures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figures(); err != nil {
			b.Fatal(err)
		}
		_ = experiment.Table3()
		_ = experiment.Figure1()
	}
}

// BenchmarkHeadline regenerates the §8 factor-of-four computation (a
// 2-trial Table 4 per iteration, then the MTTF-weighted roll-up).
func BenchmarkHeadline(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table4(2, 60_000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		h, err := experiment.Headline(rows)
		if err != nil {
			b.Fatal(err)
		}
		factor = h.Factor
	}
	b.ReportMetric(factor, "improvement_x")
}

// BenchmarkAblationPingPeriod sweeps the failure detector's ping period —
// the paper chose 1 s "to minimize detection time without overloading
// mbus"; the sweep shows how MTTR degrades with slower detection.
func BenchmarkAblationPingPeriod(b *testing.B) {
	for _, period := range []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 5 * time.Second} {
		b.Run(period.String(), func(b *testing.B) {
			fd := core.DefaultFDParams()
			fd.PingPeriod = period
			var total time.Duration
			for i := 0; i < b.N; i++ {
				sys, err := mercury.NewSystem(mercury.Config{
					Seed: 70_000 + int64(i), TreeName: "IV",
					Policy: mercury.PolicyPerfect, FDParams: &fd,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Boot(); err != nil {
					b.Fatal(err)
				}
				d, err := sys.MeasureRecovery(mercury.Fault{Component: "rtu"}, 5*time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				total += d
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "mttr_s")
		})
	}
}

// BenchmarkAblationContention sweeps the whole-system restart contention
// coefficient, isolating why tree I costs more than the slowest component.
func BenchmarkAblationContention(b *testing.B) {
	for _, c := range []float64{0, 0.048, 0.1} {
		b.Run(fmt.Sprintf("c=%.3f", c), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				sys, err := mercury.NewSystem(mercury.Config{
					Seed: 80_000 + int64(i), TreeName: "I", Policy: mercury.PolicyPerfect,
				})
				if err != nil {
					b.Fatal(err)
				}
				sys.Mgr.ContentionPerPeer = c
				if err := sys.Boot(); err != nil {
					b.Fatal(err)
				}
				d, err := sys.MeasureRecovery(mercury.Fault{Component: "rtu"}, 5*time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				total += d
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "mttr_s")
		})
	}
}

// BenchmarkKernel measures raw discrete-event throughput.
func BenchmarkKernel(b *testing.B) {
	k := sim.New(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			k.AfterFunc(time.Millisecond, fn)
		}
	}
	b.ResetTimer()
	k.AfterFunc(0, fn)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkXMLCodec measures command-language encode/decode round-trips on
// the hand-rolled wire codec.
func BenchmarkXMLCodec(b *testing.B) {
	m := xmlcmd.NewCommand("ses", "rtu", 1, "tune", "freqHz", "437100000")
	for i := 0; i < b.N; i++ {
		buf, err := xmlcmd.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xmlcmd.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXMLCodecStd is the same round trip through the retained
// encoding/xml reference path, kept as the comparison baseline.
func BenchmarkXMLCodecStd(b *testing.B) {
	m := xmlcmd.NewCommand("ses", "rtu", 1, "tune", "freqHz", "437100000")
	for i := 0; i < b.N; i++ {
		buf, err := xmlcmd.StdEncode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xmlcmd.StdDecode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrbitLookAt measures the ses workload's inner loop.
func BenchmarkOrbitLookAt(b *testing.B) {
	el := orbit.SSOElements(sim.Epoch)
	st := orbit.StanfordStation()
	for i := 0; i < b.N; i++ {
		if _, err := orbit.LookAt(el, st, sim.Epoch.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPassPrediction measures AOS/LOS scanning over a day.
func BenchmarkPassPrediction(b *testing.B) {
	el := orbit.SSOElements(sim.Epoch)
	st := orbit.StanfordStation()
	for i := 0; i < b.N; i++ {
		if _, err := orbit.PredictPasses(el, st, sim.Epoch, 24*time.Hour, 0.087); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeOperations measures restart-tree queries on the paper's
// trees.
func BenchmarkTreeOperations(b *testing.B) {
	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		b.Fatal(err)
	}
	tv := trees["V"]
	for i := 0; i < b.N; i++ {
		if _, err := tv.LowestCovering([]string{"fedr", "pbcom"}); err != nil {
			b.Fatal(err)
		}
		if _, err := tv.CellOf("ses"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoot measures a full station boot (simulated) per iteration.
func BenchmarkBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := mercury.NewSystem(mercury.Config{Seed: int64(i), TreeName: "IV"})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Boot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSatPass regenerates the §5.2 pass-data experiment (one full
// simulated pass with a mid-pass failure per iteration).
func BenchmarkSatPass(b *testing.B) {
	for _, tree := range []string{"I", "IV"} {
		b.Run("tree"+tree, func(b *testing.B) {
			var collected, available float64
			for i := 0; i < b.N; i++ {
				o, err := experiment.SatPass(tree, 90_000+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				collected += o.CollectedKb
				available += o.AvailableKb
			}
			b.ReportMetric(100*collected/available, "data_pct")
		})
	}
}

// BenchmarkSoak regenerates the availability soak (one simulated hour of
// organic failures per iteration).
func BenchmarkSoak(b *testing.B) {
	for _, tree := range []string{"I", "IV"} {
		b.Run("tree"+tree, func(b *testing.B) {
			var avail float64
			for i := 0; i < b.N; i++ {
				r, err := experiment.Soak(tree, time.Hour, 95_000+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				avail += r.Availability
			}
			b.ReportMetric(avail/float64(b.N), "availability")
		})
	}
}

// BenchmarkOptimizer measures the §7 tree-transformation search.
func BenchmarkOptimizer(b *testing.B) {
	comps := station.SplitComponents()
	mix := core.MercuryFaultMix()
	ap := core.MercuryAnalyticParams()
	var expected float64
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(comps, mix, ap, core.ModelFaulty, 0.30)
		if err != nil {
			b.Fatal(err)
		}
		expected = res.Expected
	}
	b.ReportMetric(expected, "expected_mttr_s")
}

// BenchmarkAnalyticModel measures the closed-form MTTR evaluation.
func BenchmarkAnalyticModel(b *testing.B) {
	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		b.Fatal(err)
	}
	mix := core.MercuryFaultMix()
	ap := core.MercuryAnalyticParams()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExpectedMTTR(trees["V"], mix, ap, core.ModelFaulty, 0.30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreeRestartMTTF regenerates the §4.4 rejuvenation comparison
// (two 2-hour soaks per iteration).
func BenchmarkFreeRestartMTTF(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.FreeRestartMTTF(2*time.Hour, 97_000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.FedrFailures["V"] > 0 {
			ratio = float64(r.FedrFailures["IV"]) / float64(r.FedrFailures["V"])
		}
	}
	b.ReportMetric(ratio, "mttf_gain_x")
}

// BenchmarkOracleQualitySweep regenerates the §4.4 sensitivity study: one
// (tree IV, tree V) pair of trials per error rate per iteration.
func BenchmarkOracleQualitySweep(b *testing.B) {
	var gapAt100 float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.OracleQualitySweep([]float64{0, 1}, 1, 98_000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		gapAt100 = points[1].TreeIV - points[1].TreeV
	}
	b.ReportMetric(gapAt100, "iv_minus_v_s")
}

// BenchmarkManualVsAuto regenerates the §8 manual-operator baseline (one
// manual + one automated recovery trial per iteration).
func BenchmarkManualVsAuto(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.ManualVsAuto(1, 99_000+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.ManualRecovery.MeanSeconds() / r.AutoRecovery.MeanSeconds()
	}
	b.ReportMetric(ratio, "manual_over_auto_x")
}
