package mercury_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every intra-repo link in the top-level markdown
// docs: a renamed or deleted file must not leave a dangling reference in
// README/DESIGN/EXPERIMENTS/OPERATIONS. External URLs and pure anchors are
// skipped (no network in tests); anchor suffixes on file links are
// stripped before the existence check. CI runs this as its link check.
func TestMarkdownLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown docs found at repo root")
	}
	checked := 0
	for _, doc := range docs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			path := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no intra-repo links found; the link check is vacuous")
	}
}

// rootDocs returns the top-level markdown docs, failing the test when the
// glob is empty (so a working-directory mishap can't make the checks
// vacuously pass).
func rootDocs(t *testing.T) []string {
	t.Helper()
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown docs found at repo root")
	}
	return docs
}

// fencedBlock matches ``` fenced code blocks; inlineSpan matches `inline
// code` spans. Together they delimit the "code contexts" of a doc — the
// places where a `rrbench <sub>` mention is a command line, not prose.
var (
	fencedBlock = regexp.MustCompile("(?s)```.*?```")
	inlineSpan  = regexp.MustCompile("`[^`\n]+`")
)

// codeContexts returns every fenced block and inline span in a doc body.
func codeContexts(body string) []string {
	ctxs := fencedBlock.FindAllString(body, -1)
	// Strip fenced blocks before scanning for inline spans so a stray
	// backtick inside a block isn't double-counted.
	rest := fencedBlock.ReplaceAllString(body, "")
	return append(ctxs, inlineSpan.FindAllString(rest, -1)...)
}

// rrbenchMention matches the word after "rrbench" in a code context.
// Flags (-all, -trials …) start with '-' and do not match.
var rrbenchMention = regexp.MustCompile(`rrbench\s+([a-z][a-z0-9]*)\b`)

// subcmdDecl matches the entries of the subcommands map in
// cmd/rrbench/main.go ("oracle": runOracle, …).
var subcmdDecl = regexp.MustCompile(`"([a-z]+)":\s+run[A-Z]`)

// TestDocsRRBenchSubcommands checks both directions of the subcommand
// contract between the docs and cmd/rrbench: every `rrbench <sub>`
// command the docs show must exist in the subcommands map, and every
// subcommand in the map must be demonstrated in at least one doc.
func TestDocsRRBenchSubcommands(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("cmd", "rrbench", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, m := range subcmdDecl.FindAllStringSubmatch(string(src), -1) {
		known[m[1]] = true
	}
	if len(known) == 0 {
		t.Fatal("no subcommands parsed from cmd/rrbench/main.go; the check is vacuous")
	}

	mentioned := map[string]string{} // subcommand -> first doc mentioning it
	for _, doc := range rootDocs(t) {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, ctx := range codeContexts(string(body)) {
			for _, m := range rrbenchMention.FindAllStringSubmatch(ctx, -1) {
				sub := m[1]
				if !known[sub] {
					t.Errorf("%s shows `rrbench %s`, which is not a subcommand of cmd/rrbench", doc, sub)
				}
				if _, ok := mentioned[sub]; !ok {
					mentioned[sub] = doc
				}
			}
		}
	}
	for sub := range known {
		if _, ok := mentioned[sub]; !ok {
			t.Errorf("cmd/rrbench subcommand %q is not demonstrated in any top-level doc", sub)
		}
	}
}

// metricTok matches a mercury_* metric family mention in a doc. The
// trailing [a-z0-9] keeps prefix mentions like `mercury_bus_shard_*`
// from capturing the underscore.
var metricTok = regexp.MustCompile(`mercury_[a-z0-9_]*[a-z0-9]`)

// promSuffixes are the per-series suffixes a Prometheus histogram or
// summary family fans out to; docs may name a concrete series while the
// code registers only the family.
var promSuffixes = []string{"_bucket", "_count", "_sum"}

// TestDocsMetricFamilies checks that every mercury_* metric the docs
// mention exists in the code: each token (after stripping histogram
// series suffixes) must appear in some .go file, either as an exact
// literal or as the prefix of one (docs legitimately show grep patterns
// like `mercury_rec`). A renamed or deleted metric must not leave the
// operator guide pointing at a family /metrics will never serve.
func TestDocsMetricFamilies(t *testing.T) {
	var corpus strings.Builder
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		corpus.Write(body)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	code := corpus.String()

	checked := 0
	for _, doc := range rootDocs(t) {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, tok := range metricTok.FindAllString(string(body), -1) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			family := tok
			for _, suf := range promSuffixes {
				family = strings.TrimSuffix(family, suf)
			}
			if !strings.Contains(code, family) {
				t.Errorf("%s mentions metric %q, which appears nowhere in the code", doc, tok)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no mercury_* metric mentions found in docs; the check is vacuous")
	}
}
