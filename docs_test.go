package mercury_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every intra-repo link in the top-level markdown
// docs: a renamed or deleted file must not leave a dangling reference in
// README/DESIGN/EXPERIMENTS/OPERATIONS. External URLs and pure anchors are
// skipped (no network in tests); anchor suffixes on file links are
// stripped before the existence check. CI runs this as its link check.
func TestMarkdownLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown docs found at repo root")
	}
	checked := 0
	for _, doc := range docs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			path := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no intra-repo links found; the link check is vacuous")
	}
}
