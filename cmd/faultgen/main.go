// Command faultgen injects failures into a running mercuryd over the
// message bus — the operator-side half of the paper's SIGKILL experiments.
//
// Targets are component names or, when mercuryd runs with -micro, dotted
// subcomponent names: killing "ses.cache" crashes only the session-cache
// logic inside the ses container, which self-reports the fault and is
// cured by a microreboot instead of a process restart.
//
//	faultgen -bus 127.0.0.1:7707 -kill rtu
//	faultgen -bus 127.0.0.1:7707 -kill pbcom -cure fedr,pbcom
//	faultgen -bus 127.0.0.1:7707 -kill ses.cache
//	faultgen -targets
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

func main() {
	var (
		addr    = flag.String("bus", "127.0.0.1:7707", "mbus address (comma-separated list for a sharded fabric)")
		kill    = flag.String("kill", "", "component or dotted subcomponent to kill (required)")
		cure    = flag.String("cure", "", "comma-separated minimal cure set (default: the target)")
		targets = flag.Bool("targets", false, "list the known injection targets and exit")
	)
	flag.Parse()
	if *targets {
		printTargets()
		return
	}
	if err := run(*addr, *kill, *cure); err != nil {
		fmt.Fprintln(os.Stderr, "faultgen:", err)
		os.Exit(1)
	}
}

// printTargets lists every component and micro-mode subcomponent name the
// station runtimes recognise.
func printTargets() {
	fmt.Println("components (any layout):")
	comps := append([]string(nil), station.SplitComponents()...)
	comps = append(comps, station.Fedrcom)
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Println("  " + c)
	}
	fmt.Println("subcomponents (mercuryd -micro only):")
	subs := station.MicroSubs()
	parents := make([]string, 0, len(subs))
	for p := range subs {
		parents = append(parents, p)
	}
	sort.Strings(parents)
	for _, p := range parents {
		for _, s := range subs[p] {
			fmt.Println("  " + proc.SubName(p, s))
		}
	}
}

// knownTarget reports whether name is a component or subcomponent the
// station runtimes recognise, so typos fail here instead of vanishing
// into the bus.
func knownTarget(name string) bool {
	for _, c := range append(station.SplitComponents(), station.Fedrcom) {
		if name == c {
			return true
		}
	}
	for parent, shorts := range station.MicroSubs() {
		for _, s := range shorts {
			if name == proc.SubName(parent, s) {
				return true
			}
		}
	}
	return false
}

func run(addr, kill, cure string) error {
	if kill == "" {
		flag.Usage()
		return fmt.Errorf("-kill is required")
	}
	if !knownTarget(kill) {
		return fmt.Errorf("unknown target %q (see -targets)", kill)
	}
	for _, c := range strings.Split(cure, ",") {
		if c != "" && !knownTarget(c) {
			return fmt.Errorf("unknown cure component %q (see -targets)", c)
		}
	}
	client, err := bus.DialAuto(addr, "faultgen", nil)
	if err != nil {
		return fmt.Errorf("dial bus: %w", err)
	}
	defer client.Close()

	params := []string{"component", kill}
	if cure != "" {
		params = append(params, "cure", cure)
	}
	client.Send(xmlcmd.NewCommand("faultgen", "ctl", 1, "inject", params...))
	// Give the frame time to flush through the broker before closing.
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("faultgen: requested kill of %s\n", kill)
	return nil
}
