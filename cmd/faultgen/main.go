// Command faultgen injects failures into a running mercuryd over the
// message bus — the operator-side half of the paper's SIGKILL experiments.
//
//	faultgen -bus 127.0.0.1:7707 -kill rtu
//	faultgen -bus 127.0.0.1:7707 -kill pbcom -cure fedr,pbcom
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

func main() {
	var (
		addr = flag.String("bus", "127.0.0.1:7707", "mbus address (comma-separated list for a sharded fabric)")
		kill = flag.String("kill", "", "component to kill (required)")
		cure = flag.String("cure", "", "comma-separated minimal cure set (default: the component)")
	)
	flag.Parse()
	if err := run(*addr, *kill, *cure); err != nil {
		fmt.Fprintln(os.Stderr, "faultgen:", err)
		os.Exit(1)
	}
}

func run(addr, kill, cure string) error {
	if kill == "" {
		flag.Usage()
		return fmt.Errorf("-kill is required")
	}
	client, err := bus.DialAuto(addr, "faultgen", nil)
	if err != nil {
		return fmt.Errorf("dial bus: %w", err)
	}
	defer client.Close()

	params := []string{"component", kill}
	if cure != "" {
		params = append(params, "cure", cure)
	}
	client.Send(xmlcmd.NewCommand("faultgen", "ctl", 1, "inject", params...))
	// Give the frame time to flush through the broker before closing.
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("faultgen: requested kill of %s\n", kill)
	return nil
}
