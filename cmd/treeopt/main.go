// Command treeopt runs the automatic restart-tree optimizer (paper §7:
// "identify specific algorithms for transforming restart trees"). Given a
// failure mix and an oracle model it hill-climbs over the paper's
// transformations and prints the optimized tree next to the analytic
// expected MTTR of the paper's hand-derived trees.
//
// With -online it becomes the *online* optimizer: instead of the static
// paper mix, it soaks a live simulated station under organic failures,
// mines the measured recovery episodes into an empirical fault mix, and
// proposes transformations of the tree actually deployed.
//
//	treeopt -model escalating
//	treeopt -model faulty -p 0.3
//	treeopt -online                       # soak tree II', propose from episodes
//	treeopt -online -tree III -horizon 8h
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/experiment"
	"github.com/recursive-restart/mercury/internal/station"
)

func main() {
	var (
		modelName = flag.String("model", "escalating", "oracle model: perfect, escalating, faulty")
		faultyP   = flag.Float64("p", 0.30, "guess-too-low probability for -model faulty")
		online    = flag.Bool("online", false, "mine an organic-failure soak instead of the static paper mix")
		treeName  = flag.String("tree", "IIp", "-online: deployed tree to soak and transform")
		horizon   = flag.Duration("horizon", 4*time.Hour, "-online: simulated soak duration")
		seed      = flag.Int64("seed", 2002, "-online: simulation seed")
	)
	flag.Parse()
	var err error
	if *online {
		err = runOnline(*treeName, *horizon, *seed)
	} else {
		err = run(*modelName, *faultyP)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "treeopt:", err)
		os.Exit(1)
	}
}

// runOnline is the online mode: soak, mine, propose.
func runOnline(treeName string, horizon time.Duration, seed int64) error {
	cfg := experiment.DefaultOnlineConfig()
	cfg.Tree = treeName
	cfg.Horizon = horizon
	cfg.Seed = seed
	p, err := experiment.RunOnlineProposal(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderOnlineProposal(cfg, p))
	fmt.Printf("\nproposed tree:\n%s", p.Result.Tree.Render())
	return nil
}

func run(modelName string, faultyP float64) error {
	var model core.OracleModel
	switch modelName {
	case "perfect":
		model = core.ModelPerfect
	case "escalating":
		model = core.ModelEscalating
	case "faulty":
		model = core.ModelFaulty
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	mix := core.MercuryFaultMix()
	ap := core.MercuryAnalyticParams()
	fmt.Printf("failure mix (the paper's f formalism):\n%s\n", core.RenderMix(mix))

	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		return err
	}
	fmt.Printf("analytic expected MTTR under the %s oracle model:\n", model)
	for _, name := range []string{"IIp", "III", "IV", "V"} {
		e, err := core.ExpectedMTTR(trees[name], mix, ap, model, faultyP)
		if err != nil {
			return err
		}
		fmt.Printf("  tree %-4s %6.2f s\n", name, e)
	}

	res, err := core.Optimize(station.SplitComponents(), mix, ap, model, faultyP)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimizer (hill-climb from the depth-augmented tree, %.2f s):\n", res.Start)
	for _, s := range res.Steps {
		fmt.Println("  ", s)
	}
	fmt.Printf("\noptimized tree, expected MTTR %.2f s:\n%s", res.Expected, res.Tree.Render())
	return nil
}
