// Command treeopt runs the automatic restart-tree optimizer (paper §7:
// "identify specific algorithms for transforming restart trees"). Given a
// failure mix and an oracle model it hill-climbs over the paper's
// transformations and prints the optimized tree next to the analytic
// expected MTTR of the paper's hand-derived trees.
//
//	treeopt -model escalating
//	treeopt -model faulty -p 0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/station"
)

func main() {
	var (
		modelName = flag.String("model", "escalating", "oracle model: perfect, escalating, faulty")
		faultyP   = flag.Float64("p", 0.30, "guess-too-low probability for -model faulty")
	)
	flag.Parse()
	if err := run(*modelName, *faultyP); err != nil {
		fmt.Fprintln(os.Stderr, "treeopt:", err)
		os.Exit(1)
	}
}

func run(modelName string, faultyP float64) error {
	var model core.OracleModel
	switch modelName {
	case "perfect":
		model = core.ModelPerfect
	case "escalating":
		model = core.ModelEscalating
	case "faulty":
		model = core.ModelFaulty
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	mix := core.MercuryFaultMix()
	ap := core.MercuryAnalyticParams()
	fmt.Printf("failure mix (the paper's f formalism):\n%s\n", core.RenderMix(mix))

	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		return err
	}
	fmt.Printf("analytic expected MTTR under the %s oracle model:\n", model)
	for _, name := range []string{"IIp", "III", "IV", "V"} {
		e, err := core.ExpectedMTTR(trees[name], mix, ap, model, faultyP)
		if err != nil {
			return err
		}
		fmt.Printf("  tree %-4s %6.2f s\n", name, e)
	}

	res, err := core.Optimize(station.SplitComponents(), mix, ap, model, faultyP)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimizer (hill-climb from the depth-augmented tree, %.2f s):\n", res.Start)
	for _, s := range res.Steps {
		fmt.Println("  ", s)
	}
	fmt.Printf("\noptimized tree, expected MTTR %.2f s:\n%s", res.Expected, res.Tree.Render())
	return nil
}
