// Command mercuryd runs a live Mercury ground station: real TCP message
// bus, the station components, the failure detector and the recoverer,
// all on wall-clock time (optionally compressed by -scale).
//
// The daemon joins the bus as the "ctl" client: faultgen (or any bus
// client) can send it inject commands to kill components and watch the
// automated recovery.
//
//	mercuryd -listen 127.0.0.1:7707 -tree IV -scale 10
//	faultgen -bus 127.0.0.1:7707 -kill rtu
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/mp"
	"github.com/recursive-restart/mercury/internal/rt"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

func main() {
	// When spawned by the multi-process supervisor, this invocation hosts
	// a single component child.
	if spec, ok := mp.SpecFromEnv(); ok {
		if err := mp.RunChild(spec); err != nil {
			fmt.Fprintln(os.Stderr, "mercuryd child:", err)
			os.Exit(3)
		}
		return
	}
	var (
		listen    = flag.String("listen", "127.0.0.1:7707", "TCP address for the mbus broker")
		tree      = flag.String("tree", "IV", "restart tree (I, II, IIp, III, IV, V)")
		scale     = flag.Float64("scale", 10, "time compression (10 = ten times faster than calibrated)")
		seed      = flag.Int64("seed", 2002, "deterministic seed for jitter and epochs")
		duration  = flag.Duration("duration", 0, "run time (0 = until SIGINT)")
		kill      = flag.String("kill", "", "self-driven demo: component to kill after -kill-after")
		killAt    = flag.Duration("kill-after", 5*time.Second, "wall-time delay before -kill")
		quiet     = flag.Bool("quiet", false, "suppress the live trace stream")
		multiproc = flag.Bool("multiproc", false, "run every component as its own OS process (per-JVM fidelity)")
	)
	flag.Parse()
	var err error
	if *multiproc {
		err = runMultiProc(*listen, *tree, *scale, *seed, *duration, *kill, *killAt, *quiet)
	} else {
		err = run(*listen, *tree, *scale, *seed, *duration, *kill, *killAt, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mercuryd:", err)
		os.Exit(1)
	}
}

// runMultiProc supervises one OS process per component.
func runMultiProc(listen, tree string, scale float64, seed int64, duration time.Duration,
	kill string, killAt time.Duration, quiet bool) error {
	fmt.Printf("mercuryd: booting multi-process (tree %s, scale %.0fx, bus %s)...\n", tree, scale, listen)
	sup, err := mp.StartSupervisor(mp.SupervisorConfig{
		ListenAddr: listen,
		Scale:      scale,
		TreeName:   tree,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	defer sup.Stop()

	if !quiet {
		sup.Log.Subscribe(func(e trace.Event) {
			switch e.Kind {
			case trace.FaultInjected, trace.FailureDetected, trace.OracleGuess,
				trace.RestartRequested, trace.ComponentReady, trace.ComponentDown,
				trace.GiveUp:
				fmt.Println("  ", e)
			}
		})
	}
	fmt.Printf("mercuryd: station up; bus at %s\n", sup.BusAddr())
	for _, comp := range sup.Components() {
		if pid := sup.ChildPID(comp); pid != 0 {
			fmt.Printf("  %-8s pid %d\n", comp, pid)
		} else {
			fmt.Printf("  %-8s (in supervisor)\n", comp)
		}
	}
	fmt.Println(sup.Tree.Render())

	ctl, err := bus.DialBus(sup.BusAddr(), "ctl", func(m *xmlcmd.Message) {
		if m.Kind() != xmlcmd.KindCommand || m.Command.Name != "inject" {
			return
		}
		comp, _ := m.Command.Param("component")
		fmt.Printf("mercuryd: inject request from %s: kill %s\n", m.From, comp)
		if err := sup.Inject(fault.Fault{Manifest: comp}); err != nil {
			fmt.Println("mercuryd: inject failed:", err)
		}
	})
	if err != nil {
		return fmt.Errorf("control client: %w", err)
	}
	defer ctl.Close()

	if kill != "" {
		time.AfterFunc(killAt, func() {
			fmt.Printf("mercuryd: demo kill of %s (SIGKILL to its process)\n", kill)
			if err := sup.Inject(fault.Fault{Manifest: kill}); err != nil {
				fmt.Println("mercuryd: demo kill failed:", err)
			}
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if duration > 0 {
		select {
		case <-time.After(duration):
		case <-sig:
		}
	} else {
		<-sig
	}
	fmt.Println("mercuryd: shutting down")
	return nil
}

func run(listen, tree string, scale float64, seed int64, duration time.Duration,
	kill string, killAt time.Duration, quiet bool) error {
	fmt.Printf("mercuryd: booting (tree %s, scale %.0fx, bus %s)...\n", tree, scale, listen)
	node, err := rt.StartNode(rt.NodeConfig{
		ListenAddr: listen,
		Scale:      scale,
		TreeName:   tree,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	defer node.Stop()

	if !quiet {
		node.Log.Subscribe(func(e trace.Event) {
			switch e.Kind {
			case trace.FaultInjected, trace.FailureDetected, trace.OracleGuess,
				trace.RestartRequested, trace.ComponentReady, trace.ComponentDown,
				trace.GiveUp:
				fmt.Println("  ", e)
			}
		})
	}
	fmt.Printf("mercuryd: station up; bus at %s\n", node.BusAddr())
	fmt.Println(node.Tree.Render())

	// Join the bus as the control client so faultgen can reach us.
	ctl, err := bus.DialBus(node.BusAddr(), "ctl", func(m *xmlcmd.Message) {
		if m.Kind() != xmlcmd.KindCommand || m.Command.Name != "inject" {
			return
		}
		comp, _ := m.Command.Param("component")
		cureStr, _ := m.Command.Param("cure")
		var cure []string
		if cureStr != "" {
			cure = strings.Split(cureStr, ",")
		}
		fmt.Printf("mercuryd: inject request from %s: kill %s (cure %v)\n", m.From, comp, cure)
		if err := node.Inject(fault.Fault{Manifest: comp, Cure: cure}); err != nil {
			fmt.Println("mercuryd: inject failed:", err)
		}
	})
	if err != nil {
		return fmt.Errorf("control client: %w", err)
	}
	defer ctl.Close()

	if kill != "" {
		time.AfterFunc(killAt, func() {
			fmt.Printf("mercuryd: demo kill of %s\n", kill)
			if err := node.Inject(fault.Fault{Manifest: kill}); err != nil {
				fmt.Println("mercuryd: demo kill failed:", err)
			}
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if duration > 0 {
		select {
		case <-time.After(duration):
		case <-sig:
		}
	} else {
		<-sig
	}
	fmt.Println("mercuryd: shutting down")
	return nil
}
