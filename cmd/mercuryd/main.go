// Command mercuryd runs a live Mercury ground station: real TCP message
// bus, the station components, the failure detector and the recoverer,
// all on wall-clock time (optionally compressed by -scale).
//
// The daemon joins the bus as the "ctl" client: faultgen (or any bus
// client) can send it inject commands to kill components and watch the
// automated recovery.
//
// With -obs the daemon also serves a local HTTP observability plane:
// GET /metrics (Prometheus text), GET /healthz (the failure detector's
// component liveness view as JSON) and GET /tree (the active restart
// tree with per-node state as JSON). See OPERATIONS.md for a guide.
//
// With -bus-shards N (in-process runtime) mbus becomes an N-shard fabric:
// the printed bus address is a comma-separated shard list that faultgen
// and other clients accept as-is.
//
//	mercuryd -listen 127.0.0.1:7707 -tree IV -scale 10 -obs 127.0.0.1:7790
//	mercuryd -listen 127.0.0.1:0 -bus-shards 2
//	faultgen -bus 127.0.0.1:7707 -kill rtu
//	curl -s 127.0.0.1:7790/metrics | grep mercury_rec
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/mp"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/rt"
	"github.com/recursive-restart/mercury/internal/store"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

func main() {
	// When spawned by the multi-process supervisor, this invocation hosts
	// a single component child.
	if spec, ok := mp.SpecFromEnv(); ok {
		if err := mp.RunChild(spec); err != nil {
			fmt.Fprintln(os.Stderr, "mercuryd child:", err)
			os.Exit(3)
		}
		return
	}
	var (
		listen    = flag.String("listen", "127.0.0.1:7707", "TCP address for the mbus broker")
		tree      = flag.String("tree", "IV", "restart tree (I, II, IIp, III, IV, V; IIIm/IVm imply -micro)")
		scale     = flag.Float64("scale", 10, "time compression (10 = ten times faster than calibrated)")
		seed      = flag.Int64("seed", 2002, "deterministic seed for jitter and epochs")
		duration  = flag.Duration("duration", 0, "run time (0 = until SIGINT)")
		kill      = flag.String("kill", "", "self-driven demo: component to kill after -kill-after")
		killAt    = flag.Duration("kill-after", 5*time.Second, "wall-time delay before -kill")
		quiet     = flag.Bool("quiet", false, "suppress the live trace stream")
		multiproc = flag.Bool("multiproc", false, "run every component as its own OS process (per-JVM fidelity)")
		busShards = flag.Int("bus-shards", 1, "broker shards for the mbus fabric (in-process runtime only)")
		micro     = flag.Bool("micro", false, "microrebootable components on the crash-only store (in-process runtime only)")
		oracle    = flag.String("oracle", "", "recovery policy: escalating (default), v2 (cost-aware), fixed-micro, fixed-process, fixed-ckpt")
		ckptIv    = flag.Duration("ckpt-interval", 0, "checkpoint snapshot period (micro mode; 0 = default 10s when the checkpoint plane is on)")
		estWindow = flag.Int("estimator-window", 0, "cost-aware oracle EWMA window in samples (0 = default 8)")
		obsAddr   = flag.String("obs", "", "HTTP address for the observability endpoints (/metrics, /healthz, /tree); empty = disabled")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("mercuryd", buildVersion())
		return
	}
	opts := options{
		listen:    *listen,
		tree:      *tree,
		scale:     *scale,
		seed:      *seed,
		duration:  *duration,
		kill:      *kill,
		killAt:    *killAt,
		quiet:     *quiet,
		multiproc: *multiproc,
		busShards: *busShards,
		micro:     *micro,
		oracle:    *oracle,
		ckptIv:    *ckptIv,
		estWindow: *estWindow,
		obsAddr:   *obsAddr,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "mercuryd:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	listen, tree string
	scale        float64
	seed         int64
	duration     time.Duration
	kill         string
	killAt       time.Duration
	quiet        bool
	multiproc    bool
	busShards    int
	micro        bool
	oracle       string
	ckptIv       time.Duration
	estWindow    int
	obsAddr      string
}

// stationView is the runtime-independent view of a booted station. The
// command's common tail — trace stream, control client, observability
// endpoints, shutdown — works only against this view, so the in-process
// and multi-process runtimes share one code path.
type stationView struct {
	mode     string // "in-process" or "multiproc"
	disp     *rt.Dispatcher
	mgr      *proc.Manager
	tree     *core.Tree
	treeName string
	fd       *core.FDHandle
	rec      *core.RECHandle
	comps    []string
	busAddr  string
	log      *trace.Log
	store    *store.Store // crash-only state store; nil unless micro mode
	inject   func(fault.Fault) error
	pid      func(component string) int // nil when components run in-process
	stop     func()
}

// run boots the selected runtime and drives the common station lifecycle.
func run(opts options) error {
	mode := "in-process"
	if opts.multiproc {
		mode = "multi-process"
	}
	fmt.Printf("mercuryd: booting %s (tree %s, scale %.0fx, bus %s)...\n",
		mode, opts.tree, opts.scale, opts.listen)

	var view *stationView
	if opts.multiproc {
		if opts.busShards > 1 {
			return fmt.Errorf("-bus-shards requires the in-process runtime; drop -multiproc")
		}
		if opts.micro || strings.HasSuffix(opts.tree, "m") {
			return fmt.Errorf("-micro requires the in-process runtime; drop -multiproc")
		}
		if opts.oracle != "" || opts.ckptIv > 0 {
			return fmt.Errorf("-oracle/-ckpt-interval require the in-process runtime; drop -multiproc")
		}
		sup, err := mp.StartSupervisor(mp.SupervisorConfig{
			ListenAddr: opts.listen,
			Scale:      opts.scale,
			TreeName:   opts.tree,
			Seed:       opts.seed,
		})
		if err != nil {
			return err
		}
		view = supervisorView(sup, opts.tree)
	} else {
		node, err := rt.StartNode(rt.NodeConfig{
			ListenAddr:      opts.listen,
			Scale:           opts.scale,
			TreeName:        opts.tree,
			Seed:            opts.seed,
			BusShards:       opts.busShards,
			Micro:           opts.micro,
			OracleName:      opts.oracle,
			CkptInterval:    opts.ckptIv,
			EstimatorWindow: opts.estWindow,
		})
		if err != nil {
			return err
		}
		view = nodeView(node)
	}
	defer view.stop()
	return serve(view, opts)
}

// nodeView adapts the in-process runtime to the common station view.
func nodeView(node *rt.Node) *stationView {
	return &stationView{
		mode:     "in-process",
		disp:     node.Disp,
		mgr:      node.Mgr,
		tree:     node.Tree,
		treeName: node.TreeName(),
		fd:       node.FD,
		rec:      node.REC,
		comps:    node.Components(),
		busAddr:  node.BusAddr(),
		log:      node.Log,
		store:    node.Store,
		inject:   node.Inject,
		stop:     node.Stop,
	}
}

// supervisorView adapts the multi-process runtime to the common view.
func supervisorView(sup *mp.Supervisor, treeName string) *stationView {
	return &stationView{
		mode:     "multiproc",
		disp:     sup.Disp,
		mgr:      sup.Mgr,
		tree:     sup.Tree,
		treeName: treeName,
		fd:       sup.FD,
		rec:      sup.REC,
		comps:    sup.Components(),
		busAddr:  sup.BusAddr(),
		log:      sup.Log,
		inject:   sup.Inject,
		pid:      sup.ChildPID,
		stop:     sup.Stop,
	}
}

// serve is the common post-boot path: trace stream, banner, observability
// listener, control client, optional demo kill, then wait for the end of
// the run and print the shutdown summary.
func serve(view *stationView, opts options) error {
	if !opts.quiet {
		view.log.Subscribe(func(e trace.Event) {
			switch e.Kind {
			case trace.FaultInjected, trace.FailureDetected, trace.OracleGuess,
				trace.RestartRequested, trace.ComponentReady, trace.ComponentDown,
				trace.GiveUp:
				fmt.Println("  ", e)
			}
		})
	}
	fmt.Printf("mercuryd: station up; bus at %s\n", view.busAddr)
	if view.pid != nil {
		for _, comp := range view.comps {
			if pid := view.pid(comp); pid != 0 {
				fmt.Printf("  %-8s pid %d\n", comp, pid)
			} else {
				fmt.Printf("  %-8s (in supervisor)\n", comp)
			}
		}
	}
	fmt.Println(view.tree.Render())

	if opts.obsAddr != "" {
		srv, err := startObs(opts.obsAddr, view)
		if err != nil {
			return fmt.Errorf("obs listener: %w", err)
		}
		defer srv.Close()
		fmt.Printf("mercuryd: observability at http://%s (/metrics /healthz /tree)\n", srv.Addr())
	}

	// Join the bus as the control client so faultgen can reach us. The
	// address spec may be a comma-separated shard list; DialAuto handles
	// both shapes.
	ctl, err := bus.DialAuto(view.busAddr, "ctl", func(m *xmlcmd.Message) {
		if m.Kind() != xmlcmd.KindCommand || m.Command.Name != "inject" {
			return
		}
		comp, _ := m.Command.Param("component")
		cureStr, _ := m.Command.Param("cure")
		var cure []string
		if cureStr != "" {
			cure = strings.Split(cureStr, ",")
		}
		fmt.Printf("mercuryd: inject request from %s: kill %s (cure %v)\n", m.From, comp, cure)
		if err := view.inject(fault.Fault{Manifest: comp, Cure: cure}); err != nil {
			fmt.Println("mercuryd: inject failed:", err)
		}
	})
	if err != nil {
		return fmt.Errorf("control client: %w", err)
	}
	defer ctl.Close()

	if opts.kill != "" {
		time.AfterFunc(opts.killAt, func() {
			fmt.Printf("mercuryd: demo kill of %s\n", opts.kill)
			if err := view.inject(fault.Fault{Manifest: opts.kill}); err != nil {
				fmt.Println("mercuryd: demo kill failed:", err)
			}
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if opts.duration > 0 {
		select {
		case <-time.After(opts.duration):
		case <-sig:
		}
	} else {
		<-sig
	}
	fmt.Println("mercuryd: shutting down")
	fmt.Printf("mercuryd: summary: restarts=%d suspicions=%d reports=%d frames_in=%d frames_out=%d child_spawns=%d\n",
		core.M.RECRestarts.Value(), core.M.FDSuspicions.Value(), core.M.FDReports.Value(),
		bus.M.TCPFramesIn.Value(), bus.M.TCPFramesOut.Value(), mp.M.ChildSpawns.Value())
	return nil
}
