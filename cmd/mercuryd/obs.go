package main

import (
	"encoding/json"
	"net"
	"net/http"
	"runtime/debug"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/load"
	"github.com/recursive-restart/mercury/internal/mp"
	"github.com/recursive-restart/mercury/internal/obs"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/store"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file is mercuryd's observability plane: an opt-in local HTTP
// listener (-obs) serving three endpoints.
//
//	/metrics  Prometheus text exposition of every mercury_* family
//	/healthz  the failure detector's component liveness view (JSON)
//	/tree     the active restart tree with per-node runtime state (JSON)
//
// /metrics reads only atomic counters and never touches the dispatcher.
// /healthz and /tree snapshot dispatcher-owned state (manager, FD, REC)
// via Disp.Call, so a scrape can never race a recovery in progress.

// buildVersion reports the module build version baked in by the Go
// toolchain (satisfying -version without any build-time stamping).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		v := bi.Main.Version
		if v == "" || v == "(devel)" {
			v = "devel"
		}
		return v + " " + bi.GoVersion
	}
	return "unknown"
}

// obsServer is the running observability listener.
type obsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (o *obsServer) Addr() string { return o.ln.Addr().String() }

// Close shuts the listener down.
func (o *obsServer) Close() { _ = o.srv.Close() }

// startObs builds the process-wide registry, mounts the three endpoints
// and serves them on addr.
func startObs(addr string, view *stationView) (*obsServer, error) {
	reg := obs.NewRegistry()
	bus.RegisterMetrics(reg)
	core.RegisterMetrics(reg)
	load.RegisterMetrics(reg)
	proc.RegisterMetrics(reg)
	mp.RegisterMetrics(reg)
	sim.RegisterMetrics(reg)
	if view.store != nil {
		store.RegisterMetrics(reg)
		store.RegisterStoreGauges(reg, view.store)
	}
	start := time.Now()
	reg.RegisterGaugeFunc("mercury_uptime_seconds",
		"Wall-clock seconds since the observability listener started.",
		func() float64 { return time.Since(start).Seconds() })
	reg.RegisterGaugeFunc("mercury_build_info",
		"Constant 1, labeled with build and run metadata.",
		func() float64 { return 1 },
		"version", buildVersion(), "mode", view.mode, "tree", view.treeName)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, view.health())
	})
	mux.HandleFunc("/tree", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, view.treeReport())
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &obsServer{ln: ln, srv: srv}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// healthComponent is one component's liveness as FD and the process
// manager see it.
type healthComponent struct {
	State       string `json:"state"`
	Serving     bool   `json:"serving"`
	Suspected   bool   `json:"suspected"`
	Incarnation int    `json:"incarnation"`
}

// healthReport is the /healthz body. Status is "ok" when every component
// serves and none is suspected, else "degraded".
type healthReport struct {
	Status     string                     `json:"status"`
	Components map[string]healthComponent `json:"components"`
}

// health snapshots liveness on the dispatcher.
func (v *stationView) health() healthReport {
	rep := healthReport{Status: "ok", Components: make(map[string]healthComponent)}
	names := append(append([]string(nil), v.comps...), xmlcmd.AddrFD, xmlcmd.AddrREC)
	v.disp.Call(func() {
		for _, name := range names {
			st, err := v.mgr.State(name)
			if err != nil {
				continue
			}
			inc, _ := v.mgr.Incarnation(name)
			hc := healthComponent{
				State:       st.String(),
				Serving:     v.mgr.Serving(name),
				Suspected:   v.fd.Suspected(name),
				Incarnation: inc,
			}
			if !hc.Serving || hc.Suspected {
				rep.Status = "degraded"
			}
			rep.Components[name] = hc
		}
	})
	return rep
}

// treeComponent is one component's runtime state in the /tree body.
type treeComponent struct {
	State       string `json:"state"`
	Incarnation int    `json:"incarnation"`
	Restarts    int    `json:"restarts"`
	LastStart   string `json:"last_start,omitempty"`
	LastReady   string `json:"last_ready,omitempty"`
	PID         int    `json:"pid,omitempty"`
}

// treeNode is one restart cell in the /tree body.
type treeNode struct {
	Label      string                   `json:"label"`
	Components map[string]treeComponent `json:"components,omitempty"`
	Children   []*treeNode              `json:"children,omitempty"`
}

// treeReportBody is the /tree body: the active tree, the oracle policy in
// force, and the recursive cell structure with live per-component state.
type treeReportBody struct {
	Tree   string    `json:"tree"`
	Policy string    `json:"policy"`
	Mode   string    `json:"mode"`
	Root   *treeNode `json:"root"`
}

// treeReport snapshots the restart tree on the dispatcher.
func (v *stationView) treeReport() treeReportBody {
	rep := treeReportBody{Tree: v.treeName, Mode: v.mode}
	v.disp.Call(func() {
		rep.Policy = v.rec.Oracle().Name()
		rep.Root = v.renderNode(v.rec.Tree().Root())
	})
	return rep
}

// renderNode converts one restart cell; dispatcher context only.
func (v *stationView) renderNode(n *core.Node) *treeNode {
	out := &treeNode{Label: n.Label()}
	if len(n.Components) > 0 {
		out.Components = make(map[string]treeComponent, len(n.Components))
		for _, comp := range n.Components {
			tc := treeComponent{}
			if st, err := v.mgr.State(comp); err == nil {
				tc.State = st.String()
			}
			tc.Incarnation, _ = v.mgr.Incarnation(comp)
			tc.Restarts, _ = v.mgr.Restarts(comp)
			if at, err := v.mgr.StartedAt(comp); err == nil && !at.IsZero() {
				tc.LastStart = at.Format(time.RFC3339Nano)
			}
			if at, err := v.mgr.ReadyAt(comp); err == nil && !at.IsZero() {
				tc.LastReady = at.Format(time.RFC3339Nano)
			}
			if v.pid != nil {
				tc.PID = v.pid(comp)
			}
			out.Components[comp] = tc
		}
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, v.renderNode(c))
	}
	return out
}
