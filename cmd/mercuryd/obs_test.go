package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/rt"
	"github.com/recursive-restart/mercury/internal/station"
)

// bootObs starts an in-process station with the observability listener on
// an ephemeral port and returns the view, the base URL, and a teardown.
func bootObs(t *testing.T, scale float64) (*stationView, string) {
	t.Helper()
	node, err := rt.StartNode(rt.NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Scale:      scale,
		TreeName:   "IV",
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	view := nodeView(node)
	t.Cleanup(view.stop)
	srv, err := startObs("127.0.0.1:0", view)
	if err != nil {
		t.Fatalf("startObs: %v", err)
	}
	t.Cleanup(srv.Close)
	return view, "http://" + srv.Addr()
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return body
}

// TestObsScrapeDuringRecovery hammers all three endpoints concurrently
// while a full kill→detect→restart→ready cycle runs. Under -race this
// pins the contract that scrapes never race the dispatcher.
func TestObsScrapeDuringRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("live station test")
	}
	view, base := bootObs(t, 25)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/healthz", "/tree"} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					continue // listener may be mid-teardown at test end
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	if err := view.inject(fault.Fault{Manifest: station.RTU}); err != nil {
		t.Fatalf("inject: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var ok bool
		view.disp.Call(func() {
			ok = view.mgr.AllServing(view.comps...)
		})
		if ok {
			var inc int
			view.disp.Call(func() { inc, _ = view.mgr.Incarnation(station.RTU) })
			if inc >= 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no recovery before deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// After recovery the plane must reflect the cycle.
	metrics := string(get(t, base+"/metrics"))
	for _, want := range []string{
		"mercury_fd_suspicions_total",
		"mercury_rec_restarts_total",
		"mercury_proc_startup_seconds_bucket",
		"mercury_bus_tcp_frames_total{dir=\"in\"}",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// FD's suspicion clears on its next successful probe of the restarted
	// component, so /healthz may lag the ready event by up to one ping
	// period: poll for the steady state.
	var health healthReport
	healthDeadline := time.Now().Add(30 * time.Second)
	for {
		if err := json.Unmarshal(get(t, base+"/healthz"), &health); err != nil {
			t.Fatalf("healthz decode: %v", err)
		}
		if health.Status == "ok" || time.Now().After(healthDeadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status = %q after recovery, want ok", health.Status)
	}
	if hc := health.Components[station.RTU]; hc.Incarnation < 2 {
		t.Errorf("rtu incarnation = %d, want >= 2", hc.Incarnation)
	}
}

// TestObsTreeReport checks the /tree body structure against the booted
// station: tree name, policy, and per-component state under the cells.
func TestObsTreeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("live station test")
	}
	_, base := bootObs(t, 50)

	var rep treeReportBody
	if err := json.Unmarshal(get(t, base+"/tree"), &rep); err != nil {
		t.Fatalf("tree decode: %v", err)
	}
	if rep.Tree != "IV" || rep.Policy != "escalating" || rep.Root == nil {
		t.Fatalf("tree header = %q policy = %q root-nil=%v", rep.Tree, rep.Policy, rep.Root == nil)
	}
	// Every split-layout component must appear exactly once in the tree.
	seen := map[string]int{}
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		for name, tc := range n.Components {
			seen[name]++
			if tc.State != "running" {
				t.Errorf("component %s state = %q, want running", name, tc.State)
			}
			if tc.Incarnation < 1 || tc.LastStart == "" || tc.LastReady == "" {
				t.Errorf("component %s missing lifecycle fields: %+v", name, tc)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(rep.Root)
	for _, comp := range []string{station.MBus, station.Fedr, station.Pbcom, station.RTU, station.SES, station.STR} {
		if seen[comp] != 1 {
			t.Errorf("component %s appears %d times in /tree, want 1", comp, seen[comp])
		}
	}
}

// TestObsMetricsContentType pins the Prometheus exposition content type
// and that the build-info gauge carries the run's mode and tree labels.
func TestObsMetricsContentType(t *testing.T) {
	if testing.Short() {
		t.Skip("live station test")
	}
	_, base := bootObs(t, 50)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	want := `mode="in-process",tree="IV"`
	if !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing build-info labels %s", want)
	}
}

// TestBuildVersion pins that -version always has something to print.
func TestBuildVersion(t *testing.T) {
	if v := buildVersion(); v == "" {
		t.Fatal("buildVersion is empty")
	}
}
