package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/recursive-restart/mercury/internal/experiment"
)

// The chaos subcommand runs the degraded-network sweep:
//
//	rrbench chaos                            # default grid, text table
//	rrbench chaos -loss 0,0.1,0.2 -trees IV  # narrower grid
//	rrbench chaos -json -parallel 8          # machine-readable, parallel
//
// Output is deterministic for a given seed; -parallel changes only wall
// time, never a byte of output.

// chaosCellJSON is one sweep cell in machine-readable form. Slices and
// scalar fields only — map-free, so encoding order is deterministic.
type chaosCellJSON struct {
	Tree          string  `json:"tree"`
	Loss          float64 `json:"loss"`
	PingLoss      float64 `json:"ping_loss"`
	SuspectAfter  int     `json:"suspect_after"`
	Trials        int     `json:"trials"`
	Availability  float64 `json:"availability"`
	FalseRestarts float64 `json:"false_restarts_per_trial"`
	FalseActions  float64 `json:"false_actions_per_trial"`
	GiveUps       int     `json:"give_ups"`
	Detected      int     `json:"detected"`
	DetectMeanS   float64 `json:"detect_mean_s,omitempty"`
	DetectP95S    float64 `json:"detect_p95_s,omitempty"`
	Recovered     int     `json:"recovered"`
	RecoveryMeanS float64 `json:"recovery_mean_s,omitempty"`
}

type chaosReport struct {
	Trials       int             `json:"trials"`
	Seed         int64           `json:"seed"`
	HorizonS     float64         `json:"horizon_s"`
	Dup          float64         `json:"dup"`
	JitterS      float64         `json:"jitter_s"`
	BackoffS     float64         `json:"backoff_s"`
	SuspectAfter []int           `json:"suspect_after"`
	Cells        []chaosCellJSON `json:"cells"`
}

// csvFloats parses "0,0.05,0.1".
func csvFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad loss rate %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// csvInts parses "1,3".
func csvInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// csvStrings parses "I,IV".
func csvStrings(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func runChaos(argv []string) error {
	def := experiment.DefaultChaosConfig()
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	var (
		trials   = fs.Int("trials", def.Trials, "trials per cell")
		seed     = fs.Int64("seed", def.BaseSeed, "base random seed")
		parallel = fs.Int("parallel", 0, "trial workers (0 = one per CPU, 1 = sequential)")
		jsonOut  = fs.Bool("json", false, "emit one JSON document instead of the rendered table")
		trees    = fs.String("trees", strings.Join(def.Trees, ","), "restart trees to sweep (csv)")
		loss     = fs.String("loss", "0,0.02,0.05,0.10,0.20", "per-hop loss rates to sweep (csv)")
		suspect  = fs.String("suspect", "1,3", "FD SuspectAfter thresholds to sweep (csv)")
		horizon  = fs.Duration("horizon", def.Horizon, "fault-free observation window per trial")
		jitter   = fs.Duration("jitter", def.Jitter, "max extra per-hop latency (uniform)")
		dup      = fs.Float64("dup", def.Dup, "per-hop duplication probability")
		backoff  = fs.Duration("backoff", def.Backoff, "REC restart backoff base (0 disables)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	lossRates, err := csvFloats(*loss)
	if err != nil {
		return err
	}
	thresholds, err := csvInts(*suspect)
	if err != nil {
		return err
	}
	cfg := experiment.ChaosConfig{
		Trees:        csvStrings(*trees),
		LossRates:    lossRates,
		SuspectAfter: thresholds,
		Trials:       *trials,
		Horizon:      *horizon,
		Jitter:       *jitter,
		Dup:          *dup,
		Backoff:      *backoff,
		BackoffMax:   def.BackoffMax,
		BaseSeed:     *seed,
		Workers:      *parallel,
	}
	if cfg.Backoff <= 0 {
		cfg.BackoffMax = 0
	}
	cells, err := experiment.ChaosSweep(context.Background(), cfg)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Print(experiment.RenderChaos(cfg, cells))
		return nil
	}
	rep := chaosReport{
		Trials:       cfg.Trials,
		Seed:         cfg.BaseSeed,
		HorizonS:     cfg.Horizon.Seconds(),
		Dup:          cfg.Dup,
		JitterS:      cfg.Jitter.Seconds(),
		BackoffS:     cfg.Backoff.Seconds(),
		SuspectAfter: cfg.SuspectAfter,
		Cells:        make([]chaosCellJSON, 0, len(cells)),
	}
	for _, c := range cells {
		jc := chaosCellJSON{
			Tree:          c.Tree,
			Loss:          c.Loss,
			PingLoss:      experiment.PingLoss(c.Loss, cfg.Dup),
			SuspectAfter:  c.SuspectAfter,
			Trials:        c.Trials,
			Availability:  c.Availability,
			FalseRestarts: c.FalseRestarts,
			FalseActions:  c.FalseActions,
			GiveUps:       c.GiveUps,
			Detected:      c.Detected,
			Recovered:     c.Recovered,
		}
		if c.Detect.N() > 0 {
			jc.DetectMeanS = c.Detect.MeanSeconds()
			if p95, err := c.Detect.Percentile(95); err == nil {
				jc.DetectP95S = p95.Seconds()
			}
		}
		if c.Recovery.N() > 0 {
			jc.RecoveryMeanS = c.Recovery.MeanSeconds()
		}
		rep.Cells = append(rep.Cells, jc)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
