// Command rrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rrbench -all                 # everything, 100 trials per cell
//	rrbench -table 4 -trials 20  # just Table 4, faster
//	rrbench -table 4 -parallel 8 # fan trials across 8 workers
//	rrbench -table 4 -json       # machine-readable output
//	rrbench -fig 5               # render the tree of figure 5
//	rrbench -headline            # the §8 "factor of four" computation
//	rrbench -bench               # substrate perf record → BENCH_RESULTS.json
//	rrbench -all -cpuprofile cpu.pb.gz   # profile a full regeneration
//	rrbench chaos                # degraded-network sweep (loss × tree × SuspectAfter)
//	rrbench chaos -loss 0.1 -trees IV -json   # one lossy cell, machine-readable
//	rrbench microreboot          # microreboot vs process vs group restart (MTTR/availability)
//	rrbench microreboot -bench   # append the MTTR records to BENCH_RESULTS.json
//	rrbench wire                 # wire-path codec + TCP framing benchmarks
//	rrbench wire -bench -benchlabel after     # append the records to BENCH_RESULTS.json
//	rrbench wire -shards 4 -bench             # shard-scaling sweep of the batched wire path
//	rrbench shardchaos -shards 2              # kill/recover broker shards of a live fabric
//	rrbench fleet -stations 1000              # sharded constellation campaign
//	rrbench fleet -verify -stations 12 -cores 4   # byte-identity across core counts
//	rrbench fleet -bench -stations 1000       # cores-scaling sweep → BENCH_RESULTS.json
//	rrbench requests                          # user-harm re-scoring (microreboot vs restart)
//	rrbench requests -bench                   # request-plane throughput + harm records
//	rrbench requests -verify                  # parallel byte-identity of the campaign
//	rrbench requests -tcp -shards 2           # open-loop pump over the real TCP fabric
//	rrbench oracle                            # recovery-policy choice: cost-aware v2 vs fixed
//	rrbench oracle -validate -trees 1000      # analytic-vs-simulated random-tree ranking
//	rrbench oracle -online                    # soak + online tree-transformation proposal
//
// Trials fan out across a worker pool (-parallel, default one worker per
// CPU); results are folded in seed order, so every measured number is
// identical to a sequential run. -json replaces the rendered tables with
// one JSON document on stdout for machine consumption (benchmark
// trajectories, regression tracking); the ASCII figures are omitted.
//
// -cpuprofile and -memprofile write pprof profiles covering whatever work
// the other flags select. -bench measures the simulation substrate itself
// (kernel stepping, Table 2/4 recovery campaigns) and appends one
// machine-readable record — events/sec, ns/event, allocs/event — to
// -benchout (default BENCH_RESULTS.json), growing the repo's perf
// trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/recursive-restart/mercury/internal/experiment"
	"github.com/recursive-restart/mercury/internal/metrics"
)

// subcommands maps each named mode to its runner; each owns its own flag
// set. The classic flag CLI (rrbench -all, -table N, …) handles everything
// else.
var subcommands = map[string]func([]string) error{
	"chaos":       runChaos,
	"fleet":       runFleet,
	"microreboot": runMicroreboot,
	"oracle":      runOracle,
	"requests":    runRequests,
	"shardchaos":  runShardChaos,
	"wire":        runWire,
}

// usageLine is the one-line map of the whole CLI, printed when rrbench is
// invoked with no arguments or an unknown subcommand.
func usageLine() string {
	return "usage: rrbench {chaos|fleet|microreboot|oracle|requests|shardchaos|wire} [flags] | " +
		"rrbench -all|-table N|-fig N|-headline|-soak|-rejuv|-sweep|-manual|-bench [flags]"
}

func main() {
	// Subcommand dispatch ahead of the classic flag CLI.
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		cmd, ok := subcommands[os.Args[1]]
		if !ok {
			fmt.Fprintf(os.Stderr, "rrbench: unknown subcommand %q\n%s\n", os.Args[1], usageLine())
			os.Exit(2)
		}
		if err := cmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "rrbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) == 1 {
		fmt.Fprintln(os.Stderr, usageLine())
		os.Exit(2)
	}
	var (
		table      = flag.Int("table", 0, "regenerate table N (1-4)")
		fig        = flag.Int("fig", 0, "render figure N (1-6)")
		headline   = flag.Bool("headline", false, "compute the §8 improvement factor")
		soak       = flag.Bool("soak", false, "organic-failure availability soak (trees I vs IV)")
		rejuv      = flag.Bool("rejuv", false, "§4.4 free-restart rejuvenation MTTF comparison")
		sweep      = flag.Bool("sweep", false, "oracle-quality sweep: tree IV vs V across error rates")
		manual     = flag.Bool("manual", false, "pre-RR manual-operator baseline vs automated recovery")
		all        = flag.Bool("all", false, "regenerate everything")
		trials     = flag.Int("trials", experiment.DefaultTrials, "trials per measured cell")
		seed       = flag.Int64("seed", 2002, "base random seed")
		parallel   = flag.Int("parallel", 0, "trial workers (0 = one per CPU, 1 = sequential)")
		jsonOut    = flag.Bool("json", false, "emit one JSON document instead of rendered tables")
		bench      = flag.Bool("bench", false, "measure substrate throughput and append a perf record")
		benchOut   = flag.String("benchout", "BENCH_RESULTS.json", "perf-record file for -bench")
		benchLabel = flag.String("benchlabel", "", "free-form label stored with the -bench record")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	opts := options{
		table: *table, fig: *fig, headline: *headline, soak: *soak,
		rejuv: *rejuv, sweep: *sweep, manual: *manual, all: *all,
		trials: *trials, seed: *seed, parallel: *parallel, json: *jsonOut,
		bench: *bench, benchOut: *benchOut, benchLabel: *benchLabel,
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rrbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rrbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	err := run(opts)
	if *memProf != "" {
		if f, ferr := os.Create(*memProf); ferr != nil {
			fmt.Fprintln(os.Stderr, "rrbench:", ferr)
		} else {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "rrbench:", werr)
			}
			_ = f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrbench:", err)
		os.Exit(1)
	}
}

type options struct {
	table, fig                                int
	headline, soak, rejuv, sweep, manual, all bool
	trials                                    int
	seed                                      int64
	parallel                                  int
	json                                      bool
	bench                                     bool
	benchOut                                  string
	benchLabel                                string
}

// sampleJSON is one measured cell in machine-readable form.
type sampleJSON struct {
	N       int     `json:"n"`
	MeanS   float64 `json:"mean_s"`
	StdDevS float64 `json:"stddev_s"`
	MinS    float64 `json:"min_s"`
	MaxS    float64 `json:"max_s"`
	P95S    float64 `json:"p95_s"`
}

func toSampleJSON(s *metrics.Sample) sampleJSON {
	p95, _ := s.Percentile(95)
	return sampleJSON{
		N:       s.N(),
		MeanS:   s.MeanSeconds(),
		StdDevS: s.StdDev().Seconds(),
		MinS:    s.Min().Seconds(),
		MaxS:    s.Max().Seconds(),
		P95S:    p95.Seconds(),
	}
}

type rowJSON struct {
	Label string                `json:"label"`
	Cells map[string]sampleJSON `json:"cells"`
	Paper map[string]float64    `json:"paper,omitempty"`
}

func toRowsJSON(rows []experiment.Row) []rowJSON {
	out := make([]rowJSON, 0, len(rows))
	for _, r := range rows {
		jr := rowJSON{Label: r.Label, Cells: make(map[string]sampleJSON, len(r.Cells))}
		for comp, s := range r.Cells {
			jr.Cells[comp] = toSampleJSON(s)
		}
		jr.Paper = experiment.PaperTable4[r.Label]
		out = append(out, jr)
	}
	return out
}

type table1JSON struct {
	Component      string  `json:"component"`
	ConfiguredMTTF string  `json:"configured_mttf"`
	AchievedMeanS  float64 `json:"achieved_mean_s"`
	CV             float64 `json:"cv"`
}

type headlineJSON struct {
	TreeIMTTRS float64 `json:"tree_i_mttr_s"`
	TreeVMTTRS float64 `json:"tree_v_mttr_s"`
	Factor     float64 `json:"factor"`
}

type sweepJSON struct {
	P       float64 `json:"p"`
	TreeIVS float64 `json:"tree_iv_s"`
	TreeVS  float64 `json:"tree_v_s"`
}

type soakJSON struct {
	Tree         string  `json:"tree"`
	HorizonS     float64 `json:"horizon_s"`
	Failures     int     `json:"failures"`
	Recoveries   int     `json:"recoveries"`
	GiveUps      int     `json:"give_ups"`
	DowntimeS    float64 `json:"downtime_s"`
	Availability float64 `json:"availability"`
	MeanRecS     float64 `json:"mean_recovery_s"`
}

type rejuvJSON struct {
	HorizonS      float64        `json:"horizon_s"`
	FedrFailures  map[string]int `json:"fedr_failures"`
	PbcomFailures map[string]int `json:"pbcom_failures"`
}

type manualJSON struct {
	Trials      int     `json:"trials"`
	ManualMeanS float64 `json:"manual_mean_s"`
	AutoMeanS   float64 `json:"auto_mean_s"`
	ManualAvail float64 `json:"manual_availability"`
	AutoAvail   float64 `json:"auto_availability"`
}

// report is the -json document: only the sections that ran are present.
type report struct {
	Trials   int           `json:"trials"`
	Seed     int64         `json:"seed"`
	Parallel int           `json:"parallel"`
	Table1   []table1JSON  `json:"table1,omitempty"`
	Table2   []rowJSON     `json:"table2,omitempty"`
	Table4   []rowJSON     `json:"table4,omitempty"`
	Headline *headlineJSON `json:"headline,omitempty"`
	Sweep    []sweepJSON   `json:"sweep,omitempty"`
	Soak     []soakJSON    `json:"soak,omitempty"`
	Rejuv    *rejuvJSON    `json:"rejuv,omitempty"`
	Manual   *manualJSON   `json:"manual,omitempty"`
}

func run(o options) error {
	if o.bench {
		return runBench(o, o.benchOut)
	}
	if !o.all && o.table == 0 && o.fig == 0 && !o.headline && !o.soak && !o.rejuv && !o.sweep && !o.manual {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table, -fig, -headline, -soak, -rejuv, -sweep, -manual or -bench")
	}
	ctx := context.Background()
	rc := experiment.RunConfig{Trials: o.trials, BaseSeed: o.seed, Workers: o.parallel}
	rep := report{Trials: o.trials, Seed: o.seed, Parallel: o.parallel}

	if o.all || o.manual {
		mc := rc
		if mc.Trials > 20 {
			mc.Trials = 20
		}
		r, err := experiment.ManualVsAutoCfg(ctx, mc)
		if err != nil {
			return err
		}
		if o.json {
			rep.Manual = &manualJSON{
				Trials:      r.Trials,
				ManualMeanS: r.ManualRecovery.MeanSeconds(),
				AutoMeanS:   r.AutoRecovery.MeanSeconds(),
				ManualAvail: r.ManualAvail,
				AutoAvail:   r.AutoAvail,
			}
		} else {
			fmt.Println(experiment.RenderManual(r))
		}
	}
	if o.all || o.sweep {
		sc := rc
		if sc.Trials > 25 {
			sc.Trials = 25 // the sweep has 12 cells; keep it snappy
		}
		points, err := experiment.DefaultSweepCfg(ctx, sc)
		if err != nil {
			return err
		}
		if o.json {
			for _, pt := range points {
				rep.Sweep = append(rep.Sweep, sweepJSON{P: pt.P, TreeIVS: pt.TreeIV, TreeVS: pt.TreeV})
			}
		} else {
			fmt.Println(experiment.RenderSweep(points))
		}
	}
	if o.all || o.soak {
		const horizon = 12 * time.Hour
		if !o.json {
			fmt.Println("organic-failure soak (Table 1 rates, escalating oracle, 12 simulated hours)")
		}
		results, err := experiment.Soaks(ctx, []string{"I", "IV"}, horizon, o.seed, o.parallel)
		if err != nil {
			return err
		}
		for _, r := range results {
			if o.json {
				mean := 0.0
				if r.Recovery.N() > 0 {
					mean = r.Recovery.MeanSeconds()
				}
				rep.Soak = append(rep.Soak, soakJSON{
					Tree: r.Tree, HorizonS: r.Horizon.Seconds(),
					Failures: r.Failures, Recoveries: r.Recoveries, GiveUps: r.GiveUps,
					DowntimeS: r.SystemDowntime.Seconds(), Availability: r.Availability,
					MeanRecS: mean,
				})
			} else {
				fmt.Print(experiment.RenderSoak(r))
			}
		}
		if !o.json {
			fmt.Println()
		}
	}
	if o.all || o.rejuv {
		r, err := experiment.FreeRestartMTTF(12*time.Hour, o.seed)
		if err != nil {
			return err
		}
		if o.json {
			rep.Rejuv = &rejuvJSON{
				HorizonS:      r.Horizon.Seconds(),
				FedrFailures:  r.FedrFailures,
				PbcomFailures: r.PbcomFailures,
			}
		} else {
			fmt.Println(experiment.RenderFreeRestart(r))
		}
	}
	if !o.json && (o.all || o.fig != 0) {
		if o.all || o.fig == 1 {
			fmt.Println(experiment.Figure1())
		}
		if o.all || o.fig >= 2 {
			figs, err := experiment.Figures()
			if err != nil {
				return err
			}
			fmt.Println(figs)
		}
	}
	if o.all || o.table == 1 {
		res, err := experiment.Table1Cfg(ctx, 10000, experiment.RunConfig{BaseSeed: o.seed, Workers: o.parallel})
		if err != nil {
			return err
		}
		if o.json {
			for _, r := range res {
				rep.Table1 = append(rep.Table1, table1JSON{
					Component:      r.Component,
					ConfiguredMTTF: r.Configured.String(),
					AchievedMeanS:  r.Measured.MeanSeconds(),
					CV:             r.Measured.CV(),
				})
			}
		} else {
			fmt.Println(experiment.RenderTable1(res))
		}
	}
	if !o.json && (o.all || o.table == 3) {
		fmt.Println(experiment.Table3())
	}
	var rows []experiment.Row
	if o.all || o.table == 4 || o.headline {
		var err error
		if !o.json {
			fmt.Printf("measuring %d trials per cell...\n", o.trials)
		}
		rows, err = experiment.Table4Cfg(ctx, rc)
		if err != nil {
			return err
		}
	}
	if o.all || o.table == 2 {
		// Table 2 is trees I and II only; reuse the Table 4 rows when the
		// full grid was already measured, measure just the two otherwise.
		t2 := rows
		if t2 == nil {
			var err error
			if !o.json {
				fmt.Printf("measuring %d trials per cell...\n", o.trials)
			}
			t2, err = experiment.Table2Cfg(ctx, rc)
			if err != nil {
				return err
			}
		} else {
			t2 = t2[:2]
		}
		if o.json {
			rep.Table2 = toRowsJSON(t2)
		} else {
			fmt.Println(experiment.RenderRows(t2,
				"Table 2 — tree II recovery: detection + recovery time (s)"))
		}
	}
	if o.all || o.table == 4 {
		if o.json {
			rep.Table4 = toRowsJSON(rows)
		} else {
			fmt.Println(experiment.RenderRows(rows,
				"Table 4 — overall MTTRs (s); rows are tree/oracle, columns failed components"))
		}
	}
	if o.all || o.headline {
		h, err := experiment.Headline(rows)
		if err != nil {
			return err
		}
		if o.json {
			rep.Headline = &headlineJSON{
				TreeIMTTRS: h.TreeIMTTR.Seconds(),
				TreeVMTTRS: h.TreeVMTTR.Seconds(),
				Factor:     h.Factor,
			}
		} else {
			fmt.Println(experiment.RenderHeadline(h))
		}
	}
	if o.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return nil
}
