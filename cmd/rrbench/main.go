// Command rrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rrbench -all                 # everything, 100 trials per cell
//	rrbench -table 4 -trials 20  # just Table 4, faster
//	rrbench -fig 5               # render the tree of figure 5
//	rrbench -headline            # the §8 "factor of four" computation
package main

import (
	"flag"
	"fmt"
	"os"

	"time"

	"github.com/recursive-restart/mercury/internal/experiment"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table N (1-4)")
		fig      = flag.Int("fig", 0, "render figure N (1-6)")
		headline = flag.Bool("headline", false, "compute the §8 improvement factor")
		soak     = flag.Bool("soak", false, "organic-failure availability soak (trees I vs IV)")
		rejuv    = flag.Bool("rejuv", false, "§4.4 free-restart rejuvenation MTTF comparison")
		sweep    = flag.Bool("sweep", false, "oracle-quality sweep: tree IV vs V across error rates")
		manual   = flag.Bool("manual", false, "pre-RR manual-operator baseline vs automated recovery")
		all      = flag.Bool("all", false, "regenerate everything")
		trials   = flag.Int("trials", experiment.DefaultTrials, "trials per measured cell")
		seed     = flag.Int64("seed", 2002, "base random seed")
	)
	flag.Parse()
	if err := run(*table, *fig, *headline, *soak, *rejuv, *sweep, *manual, *all, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rrbench:", err)
		os.Exit(1)
	}
}

func run(table, fig int, headline, soak, rejuv, sweep, manual, all bool, trials int, seed int64) error {
	if !all && table == 0 && fig == 0 && !headline && !soak && !rejuv && !sweep && !manual {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table, -fig, -headline, -soak, -rejuv, -sweep or -manual")
	}
	if all || manual {
		n := trials
		if n > 20 {
			n = 20
		}
		r, err := experiment.ManualVsAuto(n, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderManual(r))
	}
	if all || sweep {
		n := trials
		if n > 25 {
			n = 25 // the sweep has 12 cells; keep it snappy
		}
		points, err := experiment.DefaultSweep(n, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSweep(points))
	}
	if all || soak {
		fmt.Println("organic-failure soak (Table 1 rates, escalating oracle, 12 simulated hours)")
		for _, tree := range []string{"I", "IV"} {
			r, err := experiment.Soak(tree, 12*time.Hour, seed)
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderSoak(r))
		}
		fmt.Println()
	}
	if all || rejuv {
		r, err := experiment.FreeRestartMTTF(12*time.Hour, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFreeRestart(r))
	}
	if all || fig != 0 {
		if all || fig == 1 {
			fmt.Println(experiment.Figure1())
		}
		if all || fig >= 2 {
			figs, err := experiment.Figures()
			if err != nil {
				return err
			}
			fmt.Println(figs)
		}
	}
	if all || table == 1 {
		res, err := experiment.Table1(10000, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderTable1(res))
	}
	if all || table == 3 {
		fmt.Println(experiment.Table3())
	}
	var rows []experiment.Row
	if all || table == 2 || table == 4 || headline {
		var err error
		fmt.Printf("measuring %d trials per cell...\n", trials)
		rows, err = experiment.Table4(trials, seed)
		if err != nil {
			return err
		}
	}
	if all || table == 2 {
		fmt.Println(experiment.RenderRows(rows[:2],
			"Table 2 — tree II recovery: detection + recovery time (s)"))
	}
	if all || table == 4 {
		fmt.Println(experiment.RenderRows(rows,
			"Table 4 — overall MTTRs (s); rows are tree/oracle, columns failed components"))
	}
	if all || headline {
		h, err := experiment.Headline(rows)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderHeadline(h))
	}
	return nil
}
