package main

// The fleet subcommand drives the sharded multi-kernel constellation
// simulator (internal/sim Fleet + internal/experiment fleet campaign):
//
//	rrbench fleet -stations 1000                      # one campaign, text
//	rrbench fleet -stations 1000 -group 50 -json      # machine-readable
//	rrbench fleet -verify -stations 12 -cores 4       # byte-identity gate
//	rrbench fleet -bench -stations 1000 -benchlabel x # cores-scaling sweep
//	rrbench fleet -obs 127.0.0.1:9090 ...             # /metrics during run
//
// The folded output of a campaign depends only on the configuration and
// seed — never on -cores — which is what -verify asserts (2 seeds × 2
// runs × {1, N} cores, all folds byte-identical). -bench sweeps the core
// counts and appends events/sec plus speedup/scaling-efficiency records
// to the BENCH_RESULTS.json trajectory.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/experiment"
	"github.com/recursive-restart/mercury/internal/obs"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
)

// fleetReport is the -json document.
type fleetReport struct {
	Stations     int     `json:"stations"`
	Shards       int     `json:"shards"`
	Group        int     `json:"group"`
	Cores        int     `json:"cores"`
	Seed         int64   `json:"seed"`
	HorizonS     float64 `json:"horizon_s"`
	EpochS       float64 `json:"epoch_s"`
	LatencyS     float64 `json:"latency_s"`
	Epochs       uint64  `json:"epochs"`
	Parcels      uint64  `json:"parcels"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	WallS        float64 `json:"wall_s"`
	Failures     int     `json:"failures"`
	Recoveries   uint64  `json:"recoveries"`
	GiveUps      uint64  `json:"give_ups"`
	BeaconsSent  uint64  `json:"beacons_sent"`
	BeaconsRecv  uint64  `json:"beacons_recv"`
	DowntimeS    float64 `json:"downtime_s"`
	Availability float64 `json:"availability"`
	Digest       string  `json:"digest"`
}

func toFleetReport(r *experiment.FleetResult) fleetReport {
	return fleetReport{
		Stations: r.Stations, Shards: r.Shards, Group: r.Group, Cores: r.Workers,
		Seed: r.BaseSeed, HorizonS: r.Horizon.Seconds(), EpochS: r.Epoch.Seconds(),
		LatencyS: r.LinkLatency.Seconds(), Epochs: r.Epochs, Parcels: r.Parcels,
		Events: r.Events, EventsPerSec: float64(r.Events) / r.Wall.Seconds(),
		WallS: r.Wall.Seconds(), Failures: r.Failures, Recoveries: r.Recoveries,
		GiveUps: r.GiveUps, BeaconsSent: r.BeaconsSent, BeaconsRecv: r.BeaconsRecv,
		DowntimeS: r.Downtime.Seconds(), Availability: r.Availability,
		Digest: fmt.Sprintf("%016x", r.Digest),
	}
}

func runFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	var (
		stations   = fs.Int("stations", 1000, "constellation size")
		group      = fs.Int("group", 0, "stations per shard kernel (0 = auto: ~4 shards per core, min 1/station)")
		trees      = fs.String("trees", "IV", "restart trees assigned round-robin (csv)")
		horizon    = fs.Duration("horizon", time.Minute, "simulated campaign duration")
		seed       = fs.Int64("seed", 2002, "base random seed")
		cores      = fs.Int("cores", 0, "fleet shard workers (0 = one per CPU); output-neutral")
		epoch      = fs.Duration("epoch", 0, "synchronization quantum (0 = link latency)")
		latency    = fs.Duration("latency", 0, "inter-station link latency (0 = GEO relay default)")
		beacon     = fs.Duration("beacon", 5*time.Second, "inter-station beacon period")
		mttf       = fs.Duration("mttf", 10*time.Minute, "per-component organic MTTF (lognormal, CV 0.25)")
		noFail     = fs.Bool("nofail", false, "disable organic failures (pure messaging load)")
		loss       = fs.Float64("loss", 0, "per-hop local-fabric chaos loss probability")
		jsonOut    = fs.Bool("json", false, "emit one JSON document instead of text")
		verify     = fs.Bool("verify", false, "byte-identity gate: 2 seeds x 2 runs x {1, N} cores")
		bench      = fs.Bool("bench", false, "cores-scaling sweep; append records to -benchout")
		benchOut   = fs.String("benchout", "BENCH_RESULTS.json", "perf-record file for -bench")
		benchLabel = fs.String("benchlabel", "", "free-form label stored with the -bench record")
		obsAddr    = fs.String("obs", "", "serve /metrics on this address for the run's duration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.FleetConfig{
		Stations:     *stations,
		Group:        *group,
		Trees:        csvStrings(*trees),
		Horizon:      *horizon,
		BaseSeed:     *seed,
		Workers:      *cores,
		Epoch:        *epoch,
		LinkLatency:  *latency,
		BeaconPeriod: *beacon,
		FailMTTF:     *mttf,
		NoFailures:   *noFail,
	}
	if *loss > 0 {
		cfg.Chaos = &bus.ChaosProfile{Loss: *loss}
	}
	if cfg.Group == 0 {
		cfg.Group = autoGroup(*stations, *cores)
	}

	if *obsAddr != "" {
		stop, err := serveFleetObs(*obsAddr)
		if err != nil {
			return err
		}
		defer stop()
	}

	ctx := context.Background()
	switch {
	case *verify:
		return verifyFleet(ctx, cfg)
	case *bench:
		return benchFleet(ctx, cfg, *benchOut, *benchLabel)
	default:
		r, err := experiment.RunFleet(ctx, cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(toFleetReport(r))
		}
		fmt.Print(experiment.RenderFleet(r))
		return nil
	}
}

// autoGroup picks a shard granularity: enough shards to keep every core
// busy with work-stealing slack (~4 shards per core), but never fewer than
// one station per shard. Group is part of the reproducibility key, so
// -verify and -bench pin it explicitly before sweeping cores.
func autoGroup(stations, cores int) int {
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	g := stations / (4 * cores)
	if g < 1 {
		g = 1
	}
	return g
}

// verifyFleet is the CI byte-identity gate: for each of two seeds, run the
// same constellation twice sequentially and twice on N cores; all four
// folds must be byte-identical.
func verifyFleet(ctx context.Context, cfg experiment.FleetConfig) error {
	multi := cfg.Workers
	if multi <= 0 {
		multi = runtime.GOMAXPROCS(0)
	}
	if multi < 2 {
		multi = 2 // even on one CPU, exercise the parallel barrier path
	}
	for _, seed := range []int64{cfg.BaseSeed, cfg.BaseSeed + 1} {
		var ref string
		for run := 0; run < 2; run++ {
			for _, workers := range []int{1, multi} {
				c := cfg
				c.BaseSeed = seed
				c.Workers = workers
				r, err := experiment.RunFleet(ctx, c)
				if err != nil {
					return err
				}
				fold := r.Fold()
				if ref == "" {
					ref = fold
					continue
				}
				if fold != ref {
					return fmt.Errorf("fold diverged (seed %d, run %d, %d cores):\n--- reference ---\n%s--- got ---\n%s",
						seed, run, workers, ref, fold)
				}
			}
		}
		fmt.Printf("seed %d: 4 folds byte-identical across {1, %d} cores\n", seed, multi)
	}
	fmt.Println("fleet verify: OK")
	return nil
}

// benchFleet sweeps core counts over the same constellation and appends
// scaling records. The fold is asserted identical across the sweep — a
// scaling number from a diverged run would be meaningless.
func benchFleet(ctx context.Context, cfg experiment.FleetConfig, outPath, label string) error {
	max := runtime.GOMAXPROCS(0)
	sweep := []int{1}
	for c := 2; c < max; c *= 2 {
		sweep = append(sweep, c)
	}
	if max > 1 {
		sweep = append(sweep, max)
	}

	run := perfRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Label:     label,
		Go:        runtime.Version(),
		Seed:      cfg.BaseSeed,
	}
	var refFold string
	var baseWall float64
	for _, c := range sweep {
		ccfg := cfg
		ccfg.Workers = c
		r, err := experiment.RunFleet(ctx, ccfg)
		if err != nil {
			return err
		}
		if refFold == "" {
			refFold = r.Fold()
			baseWall = r.Wall.Seconds()
		} else if r.Fold() != refFold {
			return fmt.Errorf("fold diverged at %d cores:\n--- 1 core ---\n%s--- %d cores ---\n%s",
				c, refFold, c, r.Fold())
		}
		rec := perfRecord{
			Name:         fmt.Sprintf("fleet-%dc", c),
			Events:       r.Events,
			WallSeconds:  r.Wall.Seconds(),
			EventsPerSec: float64(r.Events) / r.Wall.Seconds(),
			NsPerEvent:   float64(r.Wall.Nanoseconds()) / float64(r.Events),
			Stations:     r.Stations,
			Shards:       r.Shards,
			Cores:        c,
		}
		rec.Speedup = baseWall / rec.WallSeconds
		rec.ScalingEfficiency = rec.Speedup / float64(c)
		run.Records = append(run.Records, rec)
		fmt.Printf("%-10s %9d stations %12d events  %8.3fs  %12.0f events/s  speedup %.2fx  efficiency %.2f\n",
			rec.Name, rec.Stations, rec.Events, rec.WallSeconds, rec.EventsPerSec,
			rec.Speedup, rec.ScalingEfficiency)
	}
	fmt.Println("folds byte-identical across the cores sweep")
	return appendPerfRun(outPath, run)
}

// serveFleetObs mounts /metrics with the fleet-relevant families (fleet
// scheduler, bus fabric, process manager) for the run's duration.
func serveFleetObs(addr string) (stop func(), err error) {
	reg := obs.NewRegistry()
	sim.RegisterMetrics(reg)
	bus.RegisterMetrics(reg)
	proc.RegisterMetrics(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WritePrometheus(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fleet: serving /metrics on http://%s/metrics\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
