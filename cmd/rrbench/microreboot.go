package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/recursive-restart/mercury/internal/experiment"
)

// The microreboot subcommand runs the microreboot-vs-restart comparison:
//
//	rrbench microreboot                      # default campaign, text table
//	rrbench microreboot -trials 5 -json      # faster, machine-readable
//	rrbench microreboot -bench               # append MTTR/availability records
//	                                         # to BENCH_RESULTS.json
//
// Output is deterministic for a given seed; -parallel changes only wall
// time, never a byte of output.

// microCellJSON is one campaign cell in machine-readable form.
type microCellJSON struct {
	Class        string  `json:"class"`
	Mode         string  `json:"mode"`
	Tree         string  `json:"tree"`
	Trials       int     `json:"trials"`
	Recovered    int     `json:"recovered"`
	MTTRMeanS    float64 `json:"mttr_mean_s,omitempty"`
	MTTRP95S     float64 `json:"mttr_p95_s,omitempty"`
	PeerRestarts int     `json:"peer_restarts"`
	Availability float64 `json:"availability"`
	GiveUps      int     `json:"give_ups"`
}

type microReport struct {
	Trials  int             `json:"trials"`
	Seed    int64           `json:"seed"`
	Loss    float64         `json:"loss"`
	Faults  int             `json:"faults"`
	GapS    float64         `json:"gap_s"`
	Suspect int             `json:"suspect_after"`
	Cells   []microCellJSON `json:"cells"`
}

func runMicroreboot(argv []string) error {
	def := experiment.DefaultMicroConfig()
	fs := flag.NewFlagSet("microreboot", flag.ContinueOnError)
	var (
		trials     = fs.Int("trials", def.Trials, "trials per (mode, class) cell")
		seed       = fs.Int64("seed", def.BaseSeed, "base random seed")
		parallel   = fs.Int("parallel", 0, "trial workers (0 = one per CPU, 1 = sequential)")
		jsonOut    = fs.Bool("json", false, "emit one JSON document instead of the rendered table")
		loss       = fs.Float64("loss", def.Loss, "per-hop frame-loss probability")
		suspect    = fs.Int("suspect", def.SuspectAfter, "FD SuspectAfter threshold")
		faults     = fs.Int("faults", def.Faults, "repeated faults in the availability phase")
		gap        = fs.Duration("gap", def.Gap, "healthy gap between repeated faults")
		bench      = fs.Bool("bench", false, "append MTTR/availability records to -benchout")
		benchOut   = fs.String("benchout", "BENCH_RESULTS.json", "perf-record file for -bench")
		benchLabel = fs.String("benchlabel", "", "free-form label stored with -bench records")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	cfg := def
	cfg.Trials = *trials
	cfg.BaseSeed = *seed
	cfg.Workers = *parallel
	cfg.Loss = *loss
	cfg.SuspectAfter = *suspect
	cfg.Faults = *faults
	cfg.Gap = *gap

	cells, err := experiment.MicroSweep(context.Background(), cfg)
	if err != nil {
		return err
	}

	switch {
	case *jsonOut:
		rep := microReport{
			Trials:  cfg.Trials,
			Seed:    cfg.BaseSeed,
			Loss:    cfg.Loss,
			Faults:  cfg.Faults,
			GapS:    cfg.Gap.Seconds(),
			Suspect: cfg.SuspectAfter,
			Cells:   make([]microCellJSON, 0, len(cells)),
		}
		for _, c := range cells {
			jc := microCellJSON{
				Class:        c.Class,
				Mode:         c.Mode,
				Tree:         c.Tree,
				Trials:       c.Trials,
				Recovered:    c.Recovered,
				PeerRestarts: c.PeerRestarts,
				Availability: c.Availability,
				GiveUps:      c.GiveUps,
			}
			if c.MTTR.N() > 0 {
				jc.MTTRMeanS = c.MTTR.MeanSeconds()
				if p95, err := c.MTTR.Percentile(95); err == nil {
					jc.MTTRP95S = p95.Seconds()
				}
			}
			rep.Cells = append(rep.Cells, jc)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	default:
		fmt.Print(experiment.RenderMicro(cfg, cells))
	}

	if *bench {
		run := perfRun{
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Label:     *benchLabel,
			Go:        runtime.Version(),
			Seed:      cfg.BaseSeed,
		}
		for _, c := range cells {
			rec := perfRecord{
				Name:         "microreboot",
				Trials:       c.Trials,
				Mode:         c.Mode,
				Class:        c.Class,
				Availability: c.Availability,
			}
			if c.MTTR.N() > 0 {
				rec.MTTRSeconds = c.MTTR.MeanSeconds()
			}
			run.Records = append(run.Records, rec)
		}
		return appendPerfRun(*benchOut, run)
	}
	return nil
}
