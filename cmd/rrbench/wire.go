package main

// The wire subcommand measures the TCP wire path in isolation: codec
// microbenchmarks (hand-rolled AppendEncode/DecodeInto against the retained
// encoding/xml reference StdEncode/StdDecode) and end-to-end frame pumps
// over real loopback TCP, including a full broker round trip. Because the
// reference implementation is kept in the tree, one invocation produces
// both the baseline and the optimised records, so BENCH_RESULTS.json gets
// an honest before/after pair from the same binary on the same machine.
//
// The pump family has three rungs: wire-pump-xml (encoding/xml framing, two
// syscalls per frame), wire-pump-fast (FrameWriter, one buffered write per
// frame) and wire-pump-batched (BatchWriter group commit, one write per
// batch). With -shards N the broker round trip additionally sweeps a 1..N
// shard fabric with multiplexed ShardedClients, tagging each record with
// its shard count so BENCH_RESULTS.json accumulates a scaling series.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// wireCorpus is the message mix pushed through every wire benchmark: the
// frames the runtime actually exchanges (liveness pings/pongs dominate,
// plus commands, telemetry and health reports).
func wireCorpus() []*xmlcmd.Message {
	ping := xmlcmd.NewPing(xmlcmd.AddrFD, xmlcmd.AddrSES, 1, 42)
	return []*xmlcmd.Message{
		ping,
		xmlcmd.NewPong(xmlcmd.AddrSES, ping, 3),
		xmlcmd.NewCommand(xmlcmd.AddrSES, xmlcmd.AddrRTU, 2, "tune", "freqHz", "437100000"),
		xmlcmd.NewTelemetry(xmlcmd.AddrRTU, xmlcmd.AddrSTR, 4, "az_deg", 181.5,
			time.Unix(1020000000, 0).UTC()),
		xmlcmd.NewEvent(xmlcmd.AddrFD, xmlcmd.AddrREC, 5, "failure", xmlcmd.AddrSES),
		{From: xmlcmd.AddrSES, To: xmlcmd.AddrFD, Seq: 6,
			Health: &xmlcmd.Health{Incarnation: 2, UptimeMs: 120000, QueueDepth: 3, AgeScore: 0.4}},
	}
}

// runWire drives `rrbench wire`.
func runWire(argv []string) error {
	fs := flag.NewFlagSet("wire", flag.ContinueOnError)
	var (
		iters      = fs.Int("iters", 200_000, "iterations per codec microbenchmark")
		frames     = fs.Int("frames", 50_000, "frames per TCP pump benchmark")
		shards     = fs.Int("shards", 0, "sweep a sharded broker round trip at 1..N shards (0 = skip)")
		jsonOut    = fs.Bool("json", false, "emit one JSON document instead of text")
		bench      = fs.Bool("bench", false, "append the records to -benchout")
		benchOut   = fs.String("benchout", "BENCH_RESULTS.json", "perf-record file for -bench")
		benchLabel = fs.String("benchlabel", "", "free-form label stored with the record")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	run := perfRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Label:     *benchLabel,
		Go:        runtime.Version(),
	}

	msgs := wireCorpus()
	encStd, err := wireEncode("wire-encode-xml", msgs, *iters, xmlcmd.StdEncode)
	if err != nil {
		return err
	}
	encFast, err := wireEncodeFast(msgs, *iters)
	if err != nil {
		return err
	}
	decStd, err := wireDecodeStd(msgs, *iters)
	if err != nil {
		return err
	}
	decFast, err := wireDecodeFast(msgs, *iters)
	if err != nil {
		return err
	}
	pumpStd, err := wirePump("wire-pump-xml", msgs, *frames, false)
	if err != nil {
		return err
	}
	pumpFast, err := wirePump("wire-pump-fast", msgs, *frames, true)
	if err != nil {
		return err
	}
	pumpBatched, err := wirePumpBatched(msgs, *frames)
	if err != nil {
		return err
	}
	broker, err := wireBroker(*frames)
	if err != nil {
		return err
	}
	run.Records = []perfRecord{encStd, encFast, decStd, decFast, pumpStd, pumpFast, pumpBatched, broker}
	for n := 1; n <= *shards; n++ {
		rec, err := wireShardedBroker(*frames, n)
		if err != nil {
			return err
		}
		run.Records = append(run.Records, rec)
	}

	if *jsonOut {
		out, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		for _, r := range run.Records {
			name := r.Name
			if r.Shards > 0 {
				name = fmt.Sprintf("%s/%d", r.Name, r.Shards)
			}
			fmt.Printf("%-20s %10d frames  %8.3fs  %12.0f frames/s  %8.1f ns/frame  %6.3f allocs/frame\n",
				name, r.Events, r.WallSeconds, r.EventsPerSec, r.NsPerEvent, r.AllocsPerEvent)
		}
	}
	if *bench {
		return appendPerfRun(*benchOut, run)
	}
	return nil
}

// wireEncode measures an allocate-per-call encoder (the encoding/xml
// reference).
func wireEncode(name string, msgs []*xmlcmd.Message, iters int, enc func(*xmlcmd.Message) ([]byte, error)) (perfRecord, error) {
	m := startMeter()
	for i := 0; i < iters; i++ {
		if _, err := enc(msgs[i%len(msgs)]); err != nil {
			return perfRecord{}, err
		}
	}
	return m.record(name, 0, uint64(iters)), nil
}

// wireEncodeFast measures AppendEncode into one reused buffer, the way
// FrameWriter drives it.
func wireEncodeFast(msgs []*xmlcmd.Message, iters int) (perfRecord, error) {
	var buf []byte
	m := startMeter()
	for i := 0; i < iters; i++ {
		var err error
		buf, err = xmlcmd.AppendEncode(buf[:0], msgs[i%len(msgs)])
		if err != nil {
			return perfRecord{}, err
		}
	}
	return m.record("wire-encode-fast", 0, uint64(iters)), nil
}

// wireFrames pre-encodes the corpus so decode benchmarks measure decoding
// only.
func wireFrames(msgs []*xmlcmd.Message) ([][]byte, error) {
	frames := make([][]byte, len(msgs))
	for i, msg := range msgs {
		b, err := xmlcmd.Encode(msg)
		if err != nil {
			return nil, err
		}
		frames[i] = b
	}
	return frames, nil
}

func wireDecodeStd(msgs []*xmlcmd.Message, iters int) (perfRecord, error) {
	frames, err := wireFrames(msgs)
	if err != nil {
		return perfRecord{}, err
	}
	m := startMeter()
	for i := 0; i < iters; i++ {
		if _, err := xmlcmd.StdDecode(frames[i%len(frames)]); err != nil {
			return perfRecord{}, err
		}
	}
	return m.record("wire-decode-xml", 0, uint64(iters)), nil
}

func wireDecodeFast(msgs []*xmlcmd.Message, iters int) (perfRecord, error) {
	frames, err := wireFrames(msgs)
	if err != nil {
		return perfRecord{}, err
	}
	var dst xmlcmd.Message
	m := startMeter()
	for i := 0; i < iters; i++ {
		if err := xmlcmd.DecodeInto(frames[i%len(frames)], &dst); err != nil {
			return perfRecord{}, err
		}
	}
	return m.record("wire-decode-fast", 0, uint64(iters)), nil
}

// stdWriteFrame is the pre-optimisation framing: encoding/xml marshal plus
// separate header and payload writes (two syscalls per frame). Kept here so
// the pump benchmark has a faithful baseline.
func stdWriteFrame(w io.Writer, m *xmlcmd.Message) error {
	payload, err := xmlcmd.StdEncode(m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// stdReadFrame is the pre-optimisation read path: allocate the payload,
// decode with encoding/xml.
func stdReadFrame(r io.Reader) (*xmlcmd.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > xmlcmd.MaxFrame {
		return nil, xmlcmd.ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return xmlcmd.StdDecode(payload)
}

// wirePump streams frames through one real loopback TCP connection: a
// writer goroutine frames the corpus, the measuring side reads until it has
// them all. fast selects the buffered FrameWriter/FrameReader path;
// otherwise the encoding/xml baseline framing runs.
func wirePump(name string, msgs []*xmlcmd.Message, frames int, fast bool) (perfRecord, error) {
	wc, rc, err := loopbackPair()
	if err != nil {
		return perfRecord{}, err
	}
	defer wc.Close()
	defer rc.Close()

	writeErr := make(chan error, 1)
	go func() {
		var fw bus.FrameWriter
		for i := 0; i < frames; i++ {
			m := msgs[i%len(msgs)]
			var err error
			if fast {
				err = fw.WriteFrame(wc, m)
			} else {
				err = stdWriteFrame(wc, m)
			}
			if err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()

	mt := startMeter()
	if fast {
		var fr bus.FrameReader
		var dst xmlcmd.Message
		for i := 0; i < frames; i++ {
			if err := fr.ReadFrameInto(rc, &dst); err != nil {
				return perfRecord{}, err
			}
		}
	} else {
		for i := 0; i < frames; i++ {
			if _, err := stdReadFrame(rc); err != nil {
				return perfRecord{}, err
			}
		}
	}
	rec := mt.record(name, 0, uint64(frames))
	if err := <-writeErr; err != nil {
		return perfRecord{}, err
	}
	return rec, nil
}

// loopbackPair opens one real loopback TCP connection and returns both
// ends: wc for the writer goroutine, rc for the measuring reader.
func loopbackPair() (wc, rc net.Conn, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	wc, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	rc, ok := <-accepted
	if !ok {
		wc.Close()
		return nil, nil, fmt.Errorf("wire: accept failed")
	}
	return wc, rc, nil
}

// wirePumpBatched streams frames through one loopback connection on the
// production batched path: the group-commit BatchWriter on the write side
// (frames queue while a write is in flight and drain as one syscall) and a
// buffered FrameReader on the read side (one kernel read yields many
// frames) — a batch is byte-identical to the same frames written
// individually. wire-pump-fast keeps the PR-4-era unbuffered
// frame-at-a-time path, so the pair is an honest before/after.
func wirePumpBatched(msgs []*xmlcmd.Message, frames int) (perfRecord, error) {
	wc, rc, err := loopbackPair()
	if err != nil {
		return perfRecord{}, err
	}
	defer wc.Close()
	defer rc.Close()

	writeErr := make(chan error, 1)
	go func() {
		// Block, not DropNewest: a throughput benchmark must be lossless, so
		// back-pressure throttles the producer instead of shedding frames.
		bw := bus.NewBatchWriter(wc, bus.BatchConfig{Policy: bus.Block})
		for i := 0; i < frames; i++ {
			if err := bw.Enqueue(msgs[i%len(msgs)]); err != nil {
				bw.Close()
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Close()
	}()

	mt := startMeter()
	br := bufio.NewReaderSize(rc, 32<<10)
	var fr bus.FrameReader
	var dst xmlcmd.Message
	for i := 0; i < frames; i++ {
		if err := fr.ReadFrameInto(br, &dst); err != nil {
			return perfRecord{}, err
		}
	}
	rec := mt.record("wire-pump-batched", 0, uint64(frames))
	if err := <-writeErr; err != nil {
		return perfRecord{}, err
	}
	return rec, nil
}

// wireBroker measures the full fabric round trip: client a → broker →
// client b, all three on loopback TCP with the production TCPBroker and
// TCPClient code.
func wireBroker(frames int) (perfRecord, error) {
	// The production broker default is DropNewest (a stalled reader must
	// not wedge routing); a lossless throughput measurement wants Block so
	// back-pressure throttles the source instead of shedding frames.
	b, err := bus.ListenBrokerConfig("127.0.0.1:0",
		bus.BrokerConfig{Batch: bus.BatchConfig{Policy: bus.Block}})
	if err != nil {
		return perfRecord{}, err
	}
	defer b.Close()

	var got atomic.Int64
	done := make(chan struct{})
	sink, err := bus.DialBus(b.Addr(), "sink", func(m *xmlcmd.Message) {
		if got.Add(1) == int64(frames) {
			close(done)
		}
	})
	if err != nil {
		return perfRecord{}, err
	}
	defer sink.Close()
	src, err := bus.DialBus(b.Addr(), "src", nil)
	if err != nil {
		return perfRecord{}, err
	}
	defer src.Close()

	// Frames to an unregistered destination drop silently, so wait until
	// the broker has processed both register frames before measuring.
	deadline := time.Now().Add(10 * time.Second)
	for len(b.ClientNames()) < 2 {
		if time.Now().After(deadline) {
			return perfRecord{}, fmt.Errorf("wire: clients never registered")
		}
		time.Sleep(time.Millisecond)
	}

	msg := xmlcmd.NewPing("src", "sink", 1, 42)
	mt := startMeter()
	for i := 0; i < frames; i++ {
		msg.Seq = uint64(i)
		src.Send(msg)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		return perfRecord{}, fmt.Errorf("wire: broker delivered %d/%d frames", got.Load(), frames)
	}
	return mt.record("wire-broker", 0, uint64(frames)), nil
}

// wireShardedBroker measures the round trip through an n-shard fabric: one
// multiplexed ShardedClient source fanning frames out round-robin over four
// destinations, each destination a ShardedClient of its own. Destination
// names hash across the shards, so with n > 1 the load spreads over n
// independent broker event loops. The record carries Shards so the sweep
// accumulates a scaling series in BENCH_RESULTS.json.
func wireShardedBroker(frames, nshards int) (perfRecord, error) {
	sb, err := bus.ListenSharded("127.0.0.1:0", nshards,
		bus.BrokerConfig{Batch: bus.BatchConfig{Policy: bus.Block}})
	if err != nil {
		return perfRecord{}, err
	}
	defer sb.Close()

	const ndests = 4
	var got atomic.Int64
	done := make(chan struct{})
	dests := make([]string, ndests)
	sinks := make([]*bus.ShardedClient, ndests)
	for i := range dests {
		dests[i] = fmt.Sprintf("cell-%d", i)
		sink, err := bus.DialSharded(sb.Addrs(), dests[i], bus.ClientConfig{}, func(m *xmlcmd.Message) {
			if got.Add(1) == int64(frames) {
				close(done)
			}
		})
		if err != nil {
			return perfRecord{}, err
		}
		defer sink.Close()
		sinks[i] = sink
	}
	src, err := bus.DialSharded(sb.Addrs(), "src", bus.ClientConfig{}, nil)
	if err != nil {
		return perfRecord{}, err
	}
	defer src.Close()

	// Every client registers on every shard; wait until each shard has
	// processed all the register frames before measuring, because frames to
	// an unregistered destination drop silently.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < nshards; i++ {
		for len(sb.Shard(i).ClientNames()) < ndests+1 {
			if time.Now().After(deadline) {
				return perfRecord{}, fmt.Errorf("wire: shard %d clients never registered", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	msg := xmlcmd.NewPing("src", dests[0], 1, 42)
	mt := startMeter()
	for i := 0; i < frames; i++ {
		msg.To = dests[i%ndests]
		msg.Seq = uint64(i)
		src.Send(msg)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		return perfRecord{}, fmt.Errorf("wire: %d-shard fabric delivered %d/%d frames",
			nshards, got.Load(), frames)
	}
	rec := mt.record("wire-broker-sharded", 0, uint64(frames))
	rec.Shards = nshards
	return rec, nil
}
