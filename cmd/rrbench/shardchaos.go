package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/recursive-restart/mercury/internal/experiment"
)

// rrbench shardchaos — kill and recover broker shards of a live sharded
// TCP fabric, verifying blast-radius isolation and comparing per-shard
// recovery with a whole-bus restart.

type shardRoundJSON struct {
	Killed             int     `json:"killed"`
	SurvivingSent      int     `json:"surviving_sent"`
	SurvivingDelivered int     `json:"surviving_delivered"`
	DeadDelivered      int     `json:"dead_delivered"`
	RecoveryS          float64 `json:"recovery_s"`
}

type shardChaosJSON struct {
	Shards             int              `json:"shards"`
	DestsPerShard      int              `json:"dests_per_shard"`
	FramesPerPhase     int              `json:"frames_per_phase"`
	Rounds             []shardRoundJSON `json:"rounds"`
	Isolated           bool             `json:"isolated"`
	ShardRecoveryMeanS float64          `json:"shard_recovery_mean_s"`
	WholeBusRecoveryS  float64          `json:"whole_bus_recovery_s"`
}

func runShardChaos(args []string) error {
	fs := flag.NewFlagSet("shardchaos", flag.ExitOnError)
	var (
		shards  = fs.Int("shards", 2, "broker shards in the fabric")
		dests   = fs.Int("dests", 2, "receiver addresses pinned per shard")
		frames  = fs.Int("frames", 5, "frames per destination per outage phase")
		timeout = fs.Duration("timeout", 30*time.Second, "per-phase settle/recovery bound")
		jsonOut = fs.Bool("json", false, "emit one JSON document instead of the table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiment.RunShardChaos(experiment.ShardChaosConfig{
		Shards:         *shards,
		DestsPerShard:  *dests,
		FramesPerPhase: *frames,
		PhaseTimeout:   *timeout,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		doc := shardChaosJSON{
			Shards:             res.Config.Shards,
			DestsPerShard:      res.Config.DestsPerShard,
			FramesPerPhase:     res.Config.FramesPerPhase,
			Isolated:           res.Isolated(),
			ShardRecoveryMeanS: res.ShardRecoveryMean.Seconds(),
			WholeBusRecoveryS:  res.WholeBusRecovery.Seconds(),
		}
		for _, rd := range res.Rounds {
			doc.Rounds = append(doc.Rounds, shardRoundJSON{
				Killed:             rd.Killed,
				SurvivingSent:      rd.SurvivingSent,
				SurvivingDelivered: rd.SurvivingDelivered,
				DeadDelivered:      rd.DeadDelivered,
				RecoveryS:          rd.Recovery.Seconds(),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Print(experiment.RenderShardChaos(res))
	if !res.Isolated() {
		return fmt.Errorf("shard isolation violated")
	}
	return nil
}
