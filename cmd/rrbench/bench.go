package main

// The -bench mode measures the simulation substrate itself rather than the
// paper's tables: raw kernel stepping throughput and full recovery-trial
// campaigns (Table 2 / Table 4 cells), each reported as events/sec,
// ns/event and allocs/event. Every run appends one record to
// BENCH_RESULTS.json so the repo accumulates a perf trajectory across PRs.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/experiment"
	"github.com/recursive-restart/mercury/internal/sim"
)

// perfRecord is one measured workload. The fleet-scaling fields
// (stations, cores, speedup, scaling efficiency) are present only on
// `rrbench fleet -bench` records; older records simply omit them.
type perfRecord struct {
	Name           string  `json:"name"`
	Trials         int     `json:"trials,omitempty"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_s"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`

	Stations          int     `json:"stations,omitempty"`
	Shards            int     `json:"shards,omitempty"`
	Cores             int     `json:"cores,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`

	// Microreboot-campaign fields, present only on `rrbench microreboot
	// -bench` records.
	Mode         string  `json:"mode,omitempty"`
	Class        string  `json:"class,omitempty"`
	MTTRSeconds  float64 `json:"mttr_s,omitempty"`
	Availability float64 `json:"availability,omitempty"`

	// Request-plane fields, present only on `rrbench requests -bench`
	// records: the substrate-throughput record carries requests/s and
	// allocs/request; the per-mode campaign records carry the user-harm
	// scoring (failed requests, goodput, downtime) plus latency quantiles.
	RequestsPerSec      float64 `json:"requests_per_sec,omitempty"`
	AllocsPerRequest    float64 `json:"allocs_per_request,omitempty"`
	GoodputPerSec       float64 `json:"goodput_per_sec,omitempty"`
	FailedRequests      uint64  `json:"failed_requests,omitempty"`
	FailedPerEpisode    float64 `json:"failed_per_episode,omitempty"`
	DowntimePerEpisodeS float64 `json:"user_downtime_per_episode_s,omitempty"`
	P50S                float64 `json:"p50_s,omitempty"`
	P99S                float64 `json:"p99_s,omitempty"`
	P999S               float64 `json:"p999_s,omitempty"`
}

// perfRun is one rrbench -bench invocation.
type perfRun struct {
	Timestamp string       `json:"timestamp"`
	Label     string       `json:"label,omitempty"`
	Go        string       `json:"go"`
	Seed      int64        `json:"seed"`
	Records   []perfRecord `json:"records"`
}

// meter wraps a measured region: wall time plus allocation counters.
type meter struct {
	start time.Time
	ms0   runtime.MemStats
}

func startMeter() *meter {
	m := &meter{}
	runtime.GC()
	runtime.ReadMemStats(&m.ms0)
	m.start = time.Now()
	return m
}

func (m *meter) record(name string, trials int, events uint64) perfRecord {
	wall := time.Since(m.start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	r := perfRecord{
		Name:        name,
		Trials:      trials,
		Events:      events,
		WallSeconds: wall.Seconds(),
	}
	if events > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
		r.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		r.AllocsPerEvent = float64(ms1.Mallocs-m.ms0.Mallocs) / float64(events)
		r.BytesPerEvent = float64(ms1.TotalAlloc-m.ms0.TotalAlloc) / float64(events)
	}
	return r
}

// benchKernel measures raw stepping throughput: a self-perpetuating event
// chain, the zero-allocation steady state.
func benchKernel(events int) (perfRecord, error) {
	k := sim.New(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < events {
			k.AfterFunc(time.Millisecond, fn)
		}
	}
	k.AfterFunc(0, fn)
	m := startMeter()
	if err := k.Run(); err != nil {
		return perfRecord{}, err
	}
	return m.record("kernel-steady", 0, k.Executed()), nil
}

// benchCells runs every cell for trials recovery trials, counting executed
// kernel events across all trials.
func benchCells(name string, cells []experiment.Cell, trials int, seed int64) (perfRecord, error) {
	m := startMeter()
	var events uint64
	for ci, cell := range cells {
		for i := 0; i < trials; i++ {
			sys, err := mercury.NewSystem(mercury.Config{
				Seed:     seed + int64(ci)*1_000_003 + int64(i)*104_729,
				TreeName: cell.Tree,
				Policy:   cell.Policy,
				FaultyP:  cell.FaultyP,
			})
			if err != nil {
				return perfRecord{}, err
			}
			if err := sys.Boot(); err != nil {
				return perfRecord{}, err
			}
			if _, err := sys.MeasureRecovery(
				mercury.Fault{Component: cell.Component, Cure: cell.Cure}, 5*time.Minute); err != nil {
				return perfRecord{}, err
			}
			events += sys.Kernel.Executed()
		}
	}
	return m.record(name, trials, events), nil
}

// table2Cells mirrors the Table 2 grid (trees I and II, per component).
func table2Cells() []experiment.Cell {
	var cells []experiment.Cell
	for _, tree := range []string{"I", "II"} {
		for _, comp := range []string{"mbus", "ses", "str", "rtu", "fedrcom"} {
			cells = append(cells, experiment.Cell{
				Tree: tree, Policy: mercury.PolicyPerfect, Component: comp,
			})
		}
	}
	return cells
}

// table4Cells mirrors the full Table 4 grid (six tree/oracle rows).
func table4Cells() []experiment.Cell {
	var cells []experiment.Cell
	for _, spec := range experiment.Table4Rows() {
		comps := []string{"mbus", "ses", "str", "rtu", "fedr", "pbcom"}
		if spec.Tree == "I" || spec.Tree == "II" {
			comps = []string{"mbus", "ses", "str", "rtu", "fedrcom"}
		}
		for _, comp := range comps {
			var cure []string
			if comp == "pbcom" && spec.Policy == mercury.PolicyFaulty {
				cure = []string{"fedr", "pbcom"}
			}
			cells = append(cells, experiment.Cell{
				Tree: spec.Tree, Policy: spec.Policy, FaultyP: spec.FaultyP,
				Component: comp, Cure: cure,
			})
		}
	}
	return cells
}

// runBench measures the kernel and both table campaigns, prints the record
// and appends it to outPath.
func runBench(o options, outPath string) error {
	run := perfRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Label:     o.benchLabel,
		Go:        runtime.Version(),
		Seed:      o.seed,
	}
	// Trial counts are capped: the point is a stable per-event rate, not
	// tight confidence intervals on MTTR.
	trials := o.trials
	if trials > 10 {
		trials = 10
	}

	kr, err := benchKernel(2_000_000)
	if err != nil {
		return err
	}
	run.Records = append(run.Records, kr)

	t2, err := benchCells("table2", table2Cells(), trials, o.seed)
	if err != nil {
		return err
	}
	run.Records = append(run.Records, t2)

	t4, err := benchCells("table4", table4Cells(), trials, o.seed)
	if err != nil {
		return err
	}
	run.Records = append(run.Records, t4)

	for _, r := range run.Records {
		fmt.Printf("%-14s %12d events  %8.3fs  %12.0f events/s  %7.1f ns/event  %6.3f allocs/event\n",
			r.Name, r.Events, r.WallSeconds, r.EventsPerSec, r.NsPerEvent, r.AllocsPerEvent)
	}
	return appendPerfRun(outPath, run)
}

// appendPerfRun appends run to the JSON array in path (creating it if
// needed), preserving prior records so the file is a perf trajectory.
func appendPerfRun(path string, run perfRun) error {
	var history []perfRun
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &history); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// first run: start a new history
	default:
		return err
	}
	history = append(history, run)
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("appended perf record to %s (%d runs)\n", path, len(history))
	return nil
}
