package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/recursive-restart/mercury/internal/experiment"
)

// The oracle subcommand runs the cost-aware recovery-policy campaigns:
//
//	rrbench oracle                       # policy choice: v2 vs fixed baselines
//	rrbench oracle -trials 8 -json       # machine-readable policy table
//	rrbench oracle -validate             # analytic-vs-simulated ranking over
//	                                     # 1000 random restart trees
//	rrbench oracle -validate -trees 200  # smaller population, faster
//	rrbench oracle -online               # soak tree II', mine episodes,
//	                                     # propose transformations
//
// All three modes are deterministic for a given seed; -parallel changes
// only wall time.

// oracleCellJSON is one policy cell in machine-readable form.
type oracleCellJSON struct {
	Policy             string  `json:"policy"`
	Trials             int     `json:"trials"`
	Episodes           int     `json:"episodes"`
	Issued             uint64  `json:"issued"`
	OK                 uint64  `json:"ok"`
	Failed             uint64  `json:"failed"`
	Shed               uint64  `json:"shed"`
	Retries            uint64  `json:"retries"`
	FailedPerEpisode   float64 `json:"failed_per_episode"`
	DowntimePerEpisode float64 `json:"user_downtime_per_episode_s"`
	HarmScore          float64 `json:"harm_score"`
}

func runOracle(argv []string) error {
	def := experiment.DefaultOracleConfig()
	vdef := experiment.DefaultTreeValidationConfig()
	fs := flag.NewFlagSet("oracle", flag.ContinueOnError)
	var (
		trials   = fs.Int("trials", def.Trials, "trials per policy cell")
		seed     = fs.Int64("seed", def.BaseSeed, "base random seed")
		parallel = fs.Int("parallel", 0, "trial workers (0 = one per CPU, 1 = sequential)")
		jsonOut  = fs.Bool("json", false, "emit one JSON document instead of the rendered table")
		episodes = fs.Int("episodes", def.Episodes, "measured fault episodes per trial")
		train    = fs.Int("train", def.TrainEpisodes, "training episodes before the measured window")
		gap      = fs.Duration("gap", def.Gap, "operation window after each fault injection")
		ckptIv   = fs.Duration("ckpt-interval", def.CkptInterval, "checkpoint snapshot period")
		validate = fs.Bool("validate", false, "run the random-tree analytic-vs-simulated ranking instead")
		trees    = fs.Int("trees", vdef.Trees, "-validate: random restart trees to score")
		online   = fs.Bool("online", false, "run the online tree-optimization soak instead")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	ctx := context.Background()

	switch {
	case *validate:
		cfg := vdef
		cfg.Trees = *trees
		cfg.BaseSeed = *seed
		cfg.Workers = *parallel
		res, err := experiment.RunTreeValidation(ctx, cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Trees    int     `json:"trees"`
				Seed     int64   `json:"seed"`
				Spearman float64 `json:"spearman"`
			}{len(res.Scores), cfg.BaseSeed, res.Spearman})
		}
		fmt.Print(experiment.RenderTreeValidation(res))
		return nil

	case *online:
		cfg := experiment.DefaultOnlineConfig()
		cfg.Seed = *seed
		p, err := experiment.RunOnlineProposal(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderOnlineProposal(cfg, p))
		return nil

	default:
		cfg := def
		cfg.Trials = *trials
		cfg.BaseSeed = *seed
		cfg.Workers = *parallel
		cfg.Episodes = *episodes
		cfg.TrainEpisodes = *train
		cfg.Gap = *gap
		cfg.CkptInterval = *ckptIv
		cells, err := experiment.OracleSweep(ctx, cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			out := make([]oracleCellJSON, 0, len(cells))
			for _, c := range cells {
				out = append(out, oracleCellJSON{
					Policy: c.Policy, Trials: c.Trials, Episodes: c.Episodes,
					Issued: c.Issued, OK: c.OK, Failed: c.Failed, Shed: c.Shed,
					Retries: c.Retries, FailedPerEpisode: c.FailedPerEpisode,
					DowntimePerEpisode: c.DowntimePerEpisode, HarmScore: c.HarmScore,
				})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}
		fmt.Print(experiment.RenderOracle(cfg, cells))
		return nil
	}
}
