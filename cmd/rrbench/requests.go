package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/experiment"
	"github.com/recursive-restart/mercury/internal/load"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// The requests subcommand runs the user-harm campaign: an open-loop
// million-user request plane on the simulated station, re-scoring
// microreboot vs process vs group restart in failed requests, slow
// requests and broken-session user-seconds instead of raw MTTR.
//
//	rrbench requests                     # default campaign, text table
//	rrbench requests -trials 3 -json     # faster, machine-readable
//	rrbench requests -verify             # parallel-vs-sequential byte identity
//	rrbench requests -bench              # campaign + substrate throughput
//	                                     # records → BENCH_RESULTS.json
//	rrbench requests -tcp -shards 2      # drive the real sharded TCP fabric
//	                                     # open-loop (wall clock, CO-corrected)
//
// Output is deterministic for a given seed in simulation modes; -parallel
// changes only wall time, never a byte of output. -tcp measures the real
// network stack and is inherently nondeterministic.

// requestCellJSON is one campaign cell in machine-readable form.
type requestCellJSON struct {
	Mode               string  `json:"mode"`
	Tree               string  `json:"tree"`
	Trials             int     `json:"trials"`
	Episodes           int     `json:"episodes"`
	Issued             uint64  `json:"issued"`
	OK                 uint64  `json:"ok"`
	Slow               uint64  `json:"slow"`
	Failed             uint64  `json:"failed"`
	Shed               uint64  `json:"shed"`
	Retries            uint64  `json:"retries"`
	GoodputPerSec      float64 `json:"goodput_per_sec"`
	FailedPerEpisode   float64 `json:"failed_per_episode"`
	SlowPerEpisode     float64 `json:"slow_per_episode"`
	DowntimePerEpisode float64 `json:"user_downtime_per_episode_s"`
	P50S               float64 `json:"p50_s"`
	P99S               float64 `json:"p99_s"`
	P999S              float64 `json:"p999_s"`
}

type requestsReport struct {
	Trials   int               `json:"trials"`
	Seed     int64             `json:"seed"`
	Class    string            `json:"class"`
	Users    int               `json:"users"`
	Rate     float64           `json:"rate"`
	Episodes int               `json:"episodes"`
	GapS     float64           `json:"gap_s"`
	WarmupS  float64           `json:"warmup_s"`
	Cells    []requestCellJSON `json:"cells"`
}

func toRequestCellJSON(c *experiment.RequestCellResult) requestCellJSON {
	return requestCellJSON{
		Mode:               c.Mode,
		Tree:               c.Tree,
		Trials:             c.Trials,
		Episodes:           c.Episodes,
		Issued:             c.Issued,
		OK:                 c.OK,
		Slow:               c.Slow,
		Failed:             c.Failed,
		Shed:               c.Shed,
		Retries:            c.Retries,
		GoodputPerSec:      c.GoodputPerSec,
		FailedPerEpisode:   c.FailedPerEpisode,
		SlowPerEpisode:     c.SlowPerEpisode,
		DowntimePerEpisode: c.DowntimePerEpisode,
		P50S:               c.P50.Seconds(),
		P99S:               c.P99.Seconds(),
		P999S:              c.P999.Seconds(),
	}
}

func runRequests(argv []string) error {
	def := experiment.DefaultRequestConfig()
	fs := flag.NewFlagSet("requests", flag.ContinueOnError)
	var (
		trials     = fs.Int("trials", def.Trials, "trials per recovery-mode cell")
		seed       = fs.Int64("seed", def.BaseSeed, "base random seed")
		parallel   = fs.Int("parallel", 0, "trial workers (0 = one per CPU, 1 = sequential)")
		jsonOut    = fs.Bool("json", false, "emit one JSON document instead of the rendered table")
		className  = fs.String("class", def.Class.String(), "request class: pass, telemetry or federation")
		users      = fs.Int("users", def.Users, "cohort population (distinct users)")
		rate       = fs.Float64("rate", def.Rate, "aggregate arrival rate, requests/s")
		deadline   = fs.Duration("deadline", def.Deadline, "per-attempt deadline (0 = engine default)")
		retries    = fs.Int("retries", def.Retries, "re-sends before a request is declared failed")
		episodes   = fs.Int("episodes", def.Episodes, "fault injections per trial")
		gap        = fs.Duration("gap", def.Gap, "operation window after each fault injection")
		warmup     = fs.Duration("warmup", def.Warmup, "healthy warm-up before measurement")
		verify     = fs.Bool("verify", false, "check parallel-vs-sequential byte identity and exit")
		bench      = fs.Bool("bench", false, "append request-plane records to -benchout")
		benchOut   = fs.String("benchout", "BENCH_RESULTS.json", "perf-record file for -bench")
		benchLabel = fs.String("benchlabel", "", "free-form label stored with -bench records")
		benchReqs  = fs.Int("benchreqs", 2_000_000, "requests in the -bench throughput measurement")
		tcp        = fs.Bool("tcp", false, "drive the real sharded TCP fabric instead of the simulation")
		shards     = fs.Int("shards", 2, "TCP mode: broker shard count")
		count      = fs.Int("count", 20_000, "TCP mode: requests to issue")
		tcpRate    = fs.Float64("tcprate", 10_000, "TCP mode: open-loop arrival rate, requests/s")
		tcpWait    = fs.Duration("tcpwait", 2*time.Second, "TCP mode: drain window before unacked requests count as failed")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *tcp {
		return runRequestsTCP(tcpPumpConfig{
			Shards: *shards, Count: *count, Rate: *tcpRate, Wait: *tcpWait,
			JSON: *jsonOut, Bench: *bench, BenchOut: *benchOut, BenchLabel: *benchLabel, Seed: *seed,
		})
	}

	class, err := load.ParseClass(*className)
	if err != nil {
		return err
	}
	cfg := def
	cfg.Trials = *trials
	cfg.BaseSeed = *seed
	cfg.Workers = *parallel
	cfg.Class = class
	cfg.Users = *users
	cfg.Rate = *rate
	cfg.Deadline = *deadline
	cfg.Retries = *retries
	cfg.Episodes = *episodes
	cfg.Gap = *gap
	cfg.Warmup = *warmup

	ctx := context.Background()
	if *verify {
		if err := experiment.VerifyRequests(ctx, cfg, *parallel); err != nil {
			return err
		}
		fmt.Println("requests: parallel and sequential campaigns are byte-identical")
		return nil
	}

	// The throughput measurement runs before the campaign so it sees a
	// quiet heap: the sweep allocates per-trial arenas that would otherwise
	// raise the GC watermark under the measured loop.
	var tp perfRecord
	if *bench {
		var err error
		if tp, err = benchRequestPlane(cfg.BaseSeed, *benchReqs); err != nil {
			return err
		}
	}

	cells, err := experiment.RequestSweep(ctx, cfg)
	if err != nil {
		return err
	}

	switch {
	case *jsonOut:
		rep := requestsReport{
			Trials:   cfg.Trials,
			Seed:     cfg.BaseSeed,
			Class:    cfg.Class.String(),
			Users:    cfg.Users,
			Rate:     cfg.Rate,
			Episodes: cfg.Episodes,
			GapS:     cfg.Gap.Seconds(),
			WarmupS:  cfg.Warmup.Seconds(),
			Cells:    make([]requestCellJSON, 0, len(cells)),
		}
		for _, c := range cells {
			rep.Cells = append(rep.Cells, toRequestCellJSON(c))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	default:
		fmt.Print(experiment.RenderRequests(cfg, cells))
	}

	if *bench {
		run := perfRun{
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Label:     *benchLabel,
			Go:        runtime.Version(),
			Seed:      cfg.BaseSeed,
		}
		run.Records = append(run.Records, tp)
		for _, c := range cells {
			run.Records = append(run.Records, perfRecord{
				Name:                "requests",
				Trials:              c.Trials,
				Mode:                c.Mode,
				Class:               cfg.Class.String(),
				GoodputPerSec:       c.GoodputPerSec,
				FailedRequests:      c.Failed,
				FailedPerEpisode:    c.FailedPerEpisode,
				DowntimePerEpisodeS: c.DowntimePerEpisode,
				P50S:                c.P50.Seconds(),
				P99S:                c.P99.Seconds(),
				P999S:               c.P999.Seconds(),
			})
		}
		fmt.Printf("%-14s %12d requests  %8.3fs  %12.0f req/s  %7.1f ns/req  %6.3f allocs/req\n",
			tp.Name, tp.Events, tp.WallSeconds, tp.RequestsPerSec, tp.NsPerEvent, tp.AllocsPerRequest)
		return appendPerfRun(*benchOut, run)
	}
	return nil
}

// benchRequestPlane measures sustained simulated request throughput on a
// healthy tree-IV station: the engine issues an open-loop megahertz pass
// stream and we count wall time and allocations until `reqs` requests have
// been issued. This is the headline "≥1M simulated requests/s/core at
// 0 allocs/request" record (the same workload as BenchmarkRequestPlane).
func benchRequestPlane(seed int64, reqs int) (perfRecord, error) {
	sys, err := mercury.NewSystem(mercury.Config{Seed: seed, TreeName: "IV"})
	if err != nil {
		return perfRecord{}, err
	}
	if err := sys.Boot(); err != nil {
		return perfRecord{}, err
	}
	eng, err := load.NewEngine(clock.Sim{K: sys.Kernel}, sys.Bus, sys.Mgr, load.Config{
		Seed:    seed,
		Cohorts: []load.Cohort{{Class: load.ClassPass, Users: 1 << 20, Rate: 1e6, Poisson: true}},
	})
	if err != nil {
		return perfRecord{}, err
	}
	if err := eng.Start(); err != nil {
		return perfRecord{}, err
	}
	// Warm the arenas and pools, then discard the warm-up samples.
	if err := sys.RunFor(200 * time.Millisecond); err != nil {
		return perfRecord{}, err
	}
	base := eng.Stats().Issued
	eng.Hist().Reset()

	m := startMeter()
	for eng.Stats().Issued-base < uint64(reqs) {
		if err := sys.RunFor(50 * time.Millisecond); err != nil {
			return perfRecord{}, err
		}
	}
	issued := eng.Stats().Issued - base
	rec := m.record("request-plane", 0, issued)
	rec.RequestsPerSec = rec.EventsPerSec
	rec.AllocsPerRequest = rec.AllocsPerEvent
	h := eng.Hist()
	if h.Count() > 0 {
		p50, _ := h.Quantile(0.50)
		p99, _ := h.Quantile(0.99)
		p999, _ := h.Quantile(0.999)
		rec.P50S = p50.Seconds()
		rec.P99S = p99.Seconds()
		rec.P999S = p999.Seconds()
	}
	rec.FailedRequests = eng.Stats().Failed
	return rec, nil
}

// tcpPumpConfig parameterises the -tcp mode.
type tcpPumpConfig struct {
	Shards int
	Count  int
	Rate   float64
	Wait   time.Duration

	JSON       bool
	Bench      bool
	BenchOut   string
	BenchLabel string
	Seed       int64
}

// tcpPumpResult is the -tcp measurement summary.
type tcpPumpResult struct {
	Shards         int     `json:"shards"`
	Requests       int     `json:"requests"`
	RatePerSec     float64 `json:"rate_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	OK             uint64  `json:"ok"`
	Failed         uint64  `json:"failed"`
	Samples        uint64  `json:"samples"`
	P50S           float64 `json:"p50_s"`
	P99S           float64 `json:"p99_s"`
	P999S          float64 `json:"p999_s"`
	MaxS           float64 `json:"max_s"`
}

// runRequestsTCP drives the real sharded TCP fabric open-loop: an
// in-process ShardedBroker, a responder client acking every command, and a
// gate client issuing requests on a fixed wall-clock schedule. Latency is
// measured from each request's *intended* arrival instant (open-loop
// accounting), and every sample additionally passes through
// Hist.RecordCorrected with the schedule interval, so a broker or
// responder stall back-fills the observations it suppressed instead of
// collapsing into one slow sample — the standard coordinated-omission
// correction for wall-clock drivers.
func runRequestsTCP(cfg tcpPumpConfig) error {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Count <= 0 || cfg.Rate <= 0 {
		return fmt.Errorf("requests -tcp: need positive -count and -tcprate")
	}
	sb, err := bus.ListenSharded("127.0.0.1:0", cfg.Shards, bus.BrokerConfig{})
	if err != nil {
		return err
	}
	defer sb.Close()
	addrs := sb.Addrs()

	// Responder: plays the tracker, acking every command it receives.
	// The client pointer is published under respMu before any command can
	// reach the callback (the gate has not dialed yet, let alone sent).
	var (
		respMu  sync.Mutex
		resp    *bus.ShardedClient
		respSeq uint64
	)
	r, err := bus.DialSharded(addrs, "str", bus.ClientConfig{}, func(m *xmlcmd.Message) {
		if m.Command == nil {
			return
		}
		respMu.Lock()
		c := resp
		respSeq++
		seq := respSeq
		respMu.Unlock()
		if c != nil {
			c.Send(xmlcmd.NewAck("str", m.From, seq, m.Seq, true, ""))
		}
	})
	if err != nil {
		return err
	}
	respMu.Lock()
	resp = r
	respMu.Unlock()
	defer r.Close()

	// Gate: open-loop sender; acks resolve pending intended-start times.
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	var (
		mu   sync.Mutex
		pend = make(map[uint64]int64, cfg.Count)
		hist metrics.Hist
		ok   uint64
	)
	gate, err := bus.DialSharded(addrs, "gate", bus.ClientConfig{}, func(m *xmlcmd.Message) {
		if m.Ack == nil {
			return
		}
		now := time.Now().UnixNano()
		mu.Lock()
		if intended, have := pend[m.Ack.OfSeq]; have {
			delete(pend, m.Ack.OfSeq)
			hist.RecordCorrected(time.Duration(now-intended), interval)
			ok++
		}
		mu.Unlock()
	})
	if err != nil {
		return err
	}
	defer gate.Close()

	// The open-loop pump: request i is *intended* at start + i·interval and
	// is sent then (or as soon after as the scheduler allows — latency is
	// measured from the intended instant either way, so pump lag is charged
	// to the measurement, never hidden).
	start := time.Now()
	for i := 1; i <= cfg.Count; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		mu.Lock()
		pend[uint64(i)] = intended.UnixNano()
		mu.Unlock()
		gate.Send(xmlcmd.NewCommand("gate", "str", uint64(i), "point", "az", "42.0", "el", "10.0"))
	}
	sendWall := time.Since(start)

	// Drain: wait for the tail of acks, then count survivors as failed.
	drainUntil := time.Now().Add(cfg.Wait)
	for time.Now().Before(drainUntil) {
		mu.Lock()
		n := len(pend)
		mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	failed := uint64(len(pend))
	okDone := ok
	res := tcpPumpResult{
		Shards:         cfg.Shards,
		Requests:       cfg.Count,
		RatePerSec:     cfg.Rate,
		AchievedPerSec: float64(cfg.Count) / sendWall.Seconds(),
		OK:             okDone,
		Failed:         failed,
		Samples:        hist.Count(),
		MaxS:           hist.Max().Seconds(),
	}
	if hist.Count() > 0 {
		p50, _ := hist.Quantile(0.50)
		p99, _ := hist.Quantile(0.99)
		p999, _ := hist.Quantile(0.999)
		res.P50S = p50.Seconds()
		res.P99S = p99.Seconds()
		res.P999S = p999.Seconds()
	}
	mu.Unlock()

	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("TCP pump — %d shards, %d requests open-loop at %.0f req/s (achieved %.0f req/s)\n",
			res.Shards, res.Requests, res.RatePerSec, res.AchievedPerSec)
		fmt.Printf("ok %d  failed %d  samples %d (CO-corrected)  p50 %.3fms  p99 %.3fms  p99.9 %.3fms  max %.3fms\n",
			res.OK, res.Failed, res.Samples,
			res.P50S*1e3, res.P99S*1e3, res.P999S*1e3, res.MaxS*1e3)
	}

	if cfg.Bench {
		run := perfRun{
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Label:     cfg.BenchLabel,
			Go:        runtime.Version(),
			Seed:      cfg.Seed,
		}
		run.Records = append(run.Records, perfRecord{
			Name:           "request-plane-tcp",
			Events:         uint64(cfg.Count),
			WallSeconds:    sendWall.Seconds(),
			Shards:         cfg.Shards,
			RequestsPerSec: res.AchievedPerSec,
			FailedRequests: res.Failed,
			P50S:           res.P50S,
			P99S:           res.P99S,
			P999S:          res.P999S,
		})
		return appendPerfRun(cfg.BenchOut, run)
	}
	return nil
}
