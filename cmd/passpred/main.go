// Command passpred predicts satellite passes over the ground station —
// the planning tool the ses substrate supports. It prints AOS, LOS,
// duration, maximum elevation and peak Doppler for each pass in the
// window.
//
//	passpred -hours 24 -minel 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/recursive-restart/mercury/internal/orbit"
)

func main() {
	var (
		hours   = flag.Float64("hours", 24, "prediction window, hours")
		minEl   = flag.Float64("minel", 5, "minimum elevation, degrees")
		carrier = flag.Float64("carrier", 437.1e6, "downlink carrier, Hz")
		lat     = flag.Float64("lat", 37.4275, "station latitude, degrees")
		lon     = flag.Float64("lon", -122.1697, "station longitude, degrees")
	)
	flag.Parse()
	if err := run(*hours, *minEl, *carrier, *lat, *lon); err != nil {
		fmt.Fprintln(os.Stderr, "passpred:", err)
		os.Exit(1)
	}
}

func run(hours, minElDeg, carrier, latDeg, lonDeg float64) error {
	now := time.Now().UTC().Truncate(time.Minute)
	st := orbit.Station{
		LatitudeRad:  latDeg * math.Pi / 180,
		LongitudeRad: lonDeg * math.Pi / 180,
		AltitudeKm:   0.03,
	}
	el := orbit.SSOElements(now)
	window := time.Duration(hours * float64(time.Hour))
	passes, err := orbit.PredictPasses(el, st, now, window, minElDeg*math.Pi/180)
	if err != nil {
		return err
	}
	fmt.Printf("passes over (%.4f, %.4f) in the next %.0f h (min el %.0f°):\n",
		latDeg, lonDeg, hours, minElDeg)
	if len(passes) == 0 {
		fmt.Println("  none")
		return nil
	}
	fmt.Printf("%-22s %-22s %8s %7s %12s\n", "AOS (UTC)", "LOS (UTC)", "dur", "max el", "peak doppler")
	for _, p := range passes {
		look, err := orbit.LookAt(el, st, p.AOS.Add(10*time.Second))
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-22s %7.1fm %6.1f° %+9.1f kHz\n",
			p.AOS.Format("2006-01-02 15:04:05"),
			p.LOS.Format("2006-01-02 15:04:05"),
			p.Duration().Minutes(),
			p.MaxEl*180/math.Pi,
			look.DopplerHz(carrier)/1000)
	}
	return nil
}
