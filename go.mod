module github.com/recursive-restart/mercury

go 1.22
