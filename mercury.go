// Package mercury is a recursively restartable satellite ground station —
// a full reproduction of "Reducing Recovery Time in a Small Recursively
// Restartable System" (Candea, Cutler, Fox, Doshi, Garg, Gowda; DSN 2002).
//
// A System bundles the deterministic simulation kernel, the ground-station
// components (mbus, ses, str, rtu, and fedrcom or its split fedr + pbcom),
// the fault-injection board, the failure detector (FD), the recoverer
// (REC) and a restart tree with its oracle. The five restart trees of the
// paper (I–V) and the three tree transformations (depth augmentation,
// group consolidation, node promotion) are available through the Tree and
// Policy options.
//
// Quick start:
//
//	sys, err := mercury.NewSystem(mercury.Config{Seed: 1, TreeName: "IV"})
//	...
//	sys.Boot()
//	d, err := sys.MeasureRecovery(mercury.Fault{Component: "rtu"}, time.Minute)
//	fmt.Printf("recovered in %v\n", d)
package mercury

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/ckpt"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/store"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Policy selects the restart policy (the oracle).
type Policy int

// Policies.
const (
	// PolicyEscalating is the realistic default: restart the failed
	// component's cell, then walk up the tree while the failure persists.
	PolicyEscalating Policy = iota + 1
	// PolicyPerfect embodies the paper's A_oracle: the minimal restart is
	// always recommended (consults the fault board, an experimental
	// device).
	PolicyPerfect
	// PolicyFaulty guesses too low with probability Config.FaultyP
	// (paper §4.4 uses 0.30).
	PolicyFaulty
	// PolicyLearning estimates cure probabilities from restart outcomes
	// and converges toward the minimal policy (paper §7 future work).
	PolicyLearning
	// PolicyCostAware is oracle v2: it chooses restart depth, microreboot
	// or checkpoint-restore by minimizing expected user-facing harm under
	// live MTTF/MTTR estimates (DESIGN.md §12).
	PolicyCostAware
	// PolicyFixedMicro always microreboots first, then escalates restarts
	// — the policy-campaign baseline for "cheapest rung first, always".
	PolicyFixedMicro
	// PolicyFixedProcess always starts at the hosting process's cell,
	// skipping the sub-level rungs entirely.
	PolicyFixedProcess
	// PolicyFixedCkpt always starts with checkpoint-restore when a
	// checkpoint exists.
	PolicyFixedCkpt
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyEscalating:
		return "escalating"
	case PolicyPerfect:
		return "perfect"
	case PolicyFaulty:
		return "faulty"
	case PolicyLearning:
		return "learning"
	case PolicyCostAware:
		return "costaware"
	case PolicyFixedMicro:
		return "fixed-micro"
	case PolicyFixedProcess:
		return "fixed-process"
	case PolicyFixedCkpt:
		return "fixed-ckpt"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterises a System.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Kernel, when non-nil, is the simulation kernel to build on instead of
	// creating a fresh one from Seed (Seed is then ignored). Fleet campaigns
	// use this to co-locate several stations on one shard kernel; such
	// systems must be booted together with BootAll, not System.Boot.
	Kernel *sim.Kernel
	// TreeName picks the restart tree: "I", "II", "IIp", "III", "IV", "V".
	// Trees I and II imply the monolithic fedrcom layout; the rest use the
	// split layout. Default "IV".
	TreeName string
	// Policy picks the oracle; default PolicyEscalating.
	Policy Policy
	// FaultyP is the guess-too-low probability for PolicyFaulty.
	FaultyP float64
	// Params overrides the station parameters; nil means calibrated
	// defaults.
	Params *station.Params
	// FDParams / RECParams override detector and recoverer settings.
	FDParams  *core.FDParams
	RECParams *core.RECParams
	// Micro enables the microrebootable decomposition: session/track state
	// moves into a crash-only store and the fat components gain
	// individually restartable subcomponents (ses.cache, str.track, ...).
	// Implied by the m-variant tree names ("IIIm", "IVm"); requires the
	// split layout.
	Micro bool
	// Chaos, when non-nil, degrades every simulated bus link with the
	// profile's loss/duplication/jitter from construction onward. Most
	// experiments instead call System.SetChaos after Boot so a lossy
	// fabric cannot wedge the initial whole-system start.
	Chaos *bus.ChaosProfile
	// DisableRecovery builds the station without FD/REC (for baselines
	// that model the pre-RR, operator-driven Mercury).
	DisableRecovery bool
	// CustomTree, when non-nil, overrides TreeName with an arbitrary
	// restart tree over the split component layout (the treeopt
	// validation campaigns boot thousands of these). Micro mode still
	// follows TreeName/Micro.
	CustomTree *core.Tree
	// CkptInterval sets the checkpoint period; 0 means the 10s default.
	// The checkpoint manager only exists in micro mode and only when a
	// checkpoint-aware policy or a positive interval asks for it.
	CkptInterval time.Duration
	// EstimatorWindow is oracle v2's EWMA window N (alpha = 2/(N+1));
	// 0 means 8.
	EstimatorWindow int
	// HarmRates maps a component (or dotted sub, falling back to its
	// hosting process) to the user-harm rate an outage of it causes —
	// typically the offered request rate against it. Oracle v2 reports
	// predicted harm in these units; nil means rate 1 everywhere.
	HarmRates map[string]float64
}

// Fault describes a failure to inject.
type Fault struct {
	// Component is where the failure manifests (fail-silent).
	Component string
	// Cure is the minimal set of components whose joint restart cures it;
	// empty means the component alone.
	Cure []string
	// Hard marks a failure no restart can cure.
	Hard bool
	// Hang delivers the failure as a hang (spin/livelock) instead of a
	// crash; both look identical to the failure detector.
	Hang bool
	// StateKey marks a state-corruption fault on this store key: restarting
	// the manifest alone reattaches to the poison; the cure is either the
	// full Cure-set restart or a pre-injection checkpoint restore plus a
	// manifest reboot.
	StateKey string
}

// System is a fully wired, simulated Mercury ground station.
type System struct {
	Kernel    *sim.Kernel
	Clock     clock.Clock
	Mgr       *proc.Manager
	Bus       *bus.Sim
	Board     *fault.Board
	Injector  *fault.Injector
	Log       *trace.Log
	Trees     map[string]*core.Tree
	Tree      *core.Tree
	Oracle    core.Oracle
	REC       *core.RECHandle
	Collector *station.Collector
	Params    station.Params
	// Store is the crash-only state store; nil unless micro mode is on.
	Store *store.Store
	// Ckpt is the checkpoint manager; nil unless a checkpoint-aware
	// policy or Config.CkptInterval asked for one (micro mode only).
	Ckpt *ckpt.Manager

	components []string
	booted     bool
	armed      bool // a failure is outstanding; recovery not yet logged
}

// Errors.
var (
	ErrUnknownTree = errors.New("mercury: unknown tree name")
	ErrNotBooted   = errors.New("mercury: system not booted")
	ErrNoRecovery  = errors.New("mercury: system did not recover before the deadline")
)

// FDName and RECName are the infrastructure process addresses.
const (
	FDName  = xmlcmd.AddrFD
	RECName = xmlcmd.AddrREC
)

// NewSystem builds a simulated station per the config. Call Boot next.
func NewSystem(cfg Config) (*System, error) {
	if cfg.TreeName == "" {
		cfg.TreeName = "IV"
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyEscalating
	}

	k := cfg.Kernel
	if k == nil {
		k = sim.New(cfg.Seed)
	}
	clk := clock.Sim{K: k}
	log := trace.NewLog()
	mgr := proc.NewManager(clk, k.Rand(), log)
	b := bus.NewSim(clk, mgr, station.MBus)
	mgr.SetTransport(b)
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, err
		}
		b.SetChaos(cfg.Chaos)
	}
	board := fault.NewBoard(clk, mgr, log)
	injector := fault.NewInjector(clk, mgr, board)

	params := station.DefaultParams(k.Now())
	if cfg.Params != nil {
		params = *cfg.Params
	}

	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		return nil, err
	}

	// Micro mode: externalize session/track state into a crash-only store
	// and grow the sub-process restart level onto the split trees. The
	// m-variant trees exist only in micro mode, so classic systems see the
	// exact historical tree set.
	micro := cfg.Micro || strings.HasSuffix(cfg.TreeName, "m")
	var st *store.Store
	if micro {
		st = store.New(clk, store.Options{SweepPeriod: 5 * time.Second})
		if params.Micro == nil {
			params.Micro = station.DefaultMicroParams(st)
		} else if params.Micro.Store == nil {
			params.Micro.Store = st
		}
		for _, base := range []string{"III", "IV"} {
			mt, err := core.SubAugment(trees[base], base+"m", station.MicroSubs())
			if err != nil {
				return nil, fmt.Errorf("tree %sm: %w", base, err)
			}
			trees[base+"m"] = mt
		}
	}

	// Checkpoint plane: only built when something will use it, so classic
	// configurations schedule no extra ticker events and goldens hold.
	var ckptMgr *ckpt.Manager
	needCkpt := cfg.Policy == PolicyCostAware || cfg.Policy == PolicyFixedCkpt || cfg.CkptInterval > 0
	if micro && st != nil && needCkpt {
		ckptMgr = ckpt.New(clk, st, ckpt.Options{
			Interval: cfg.CkptInterval,
			Keys:     station.MicroCheckpointKeys(),
		})
		ckptMgr.OnRestore(board.NoteRestore)
	}

	var tree *core.Tree
	if cfg.CustomTree != nil {
		tree = cfg.CustomTree
		trees[tree.Name] = tree
	} else {
		var ok bool
		tree, ok = trees[cfg.TreeName]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTree, cfg.TreeName)
		}
	}
	layout := station.Split
	if cfg.CustomTree == nil && (cfg.TreeName == "I" || cfg.TreeName == "II") {
		layout = station.Monolithic
	}

	comps, err := station.Register(mgr, params, layout)
	if err != nil {
		return nil, err
	}
	coll := station.NewCollector()
	if err := mgr.Register(station.Ops, coll.Handler()); err != nil {
		return nil, err
	}

	sys := &System{
		Kernel:     k,
		Clock:      clk,
		Mgr:        mgr,
		Bus:        b,
		Board:      board,
		Injector:   injector,
		Log:        log,
		Trees:      trees,
		Tree:       tree,
		Collector:  coll,
		Params:     params,
		Store:      st,
		Ckpt:       ckptMgr,
		components: comps,
	}

	if !cfg.DisableRecovery {
		oracle, err := sys.buildOracle(cfg)
		if err != nil {
			return nil, err
		}
		sys.Oracle = oracle

		fdParams := core.DefaultFDParams()
		if cfg.FDParams != nil {
			fdParams = *cfg.FDParams
		}
		recParams := core.DefaultRECParams()
		if cfg.RECParams != nil {
			recParams = *cfg.RECParams
		}
		if ckptMgr != nil && recParams.CkptRestore == nil {
			recParams.CkptRestore = func(set []string) (time.Duration, error) {
				var total time.Duration
				restored := false
				for _, c := range set {
					if lat, err := ckptMgr.Restore(c); err == nil {
						total += lat
						restored = true
					}
				}
				if !restored {
					return 0, fmt.Errorf("mercury: no checkpoint covering %v", set)
				}
				return total, nil
			}
		}
		restartFD := func() {
			if st, _ := mgr.State(FDName); st != proc.Starting {
				_ = mgr.Restart([]string{FDName})
			}
		}
		restartREC := func() {
			if st, _ := mgr.State(RECName); st != proc.Starting {
				_ = mgr.Restart([]string{RECName})
			}
		}
		recFactory, handle := core.NewREC(recParams, tree, oracle, mgr, restartFD)
		sys.REC = handle
		if err := mgr.Register(RECName, recFactory); err != nil {
			return nil, err
		}
		if err := mgr.Register(FDName, core.NewFD(fdParams, comps, station.MBus, restartREC)); err != nil {
			return nil, err
		}
		b.AddDirectLink(FDName, RECName)
	}

	// Recovery monitor: registered after the fault board (whose silencing
	// listener must run first) and after REC's bookkeeping. A_entire: any
	// component failure makes the whole system unavailable; recovery is
	// complete when every component serves and no fault is active.
	mgr.OnDown(func(string, string) { sys.armed = true })
	mgr.OnReady(func(string) {
		if sys.armed && mgr.AllServing(sys.components...) && mgr.AllSubsServing() &&
			board.ActiveCount() == 0 {
			sys.armed = false
			log.Add(clk.Now(), trace.SystemRecovered, "", "", "all components serving")
		}
	})

	return sys, nil
}

// buildOracle constructs the configured policy.
func (s *System) buildOracle(cfg Config) (core.Oracle, error) {
	switch cfg.Policy {
	case PolicyEscalating:
		return core.EscalatingOracle{}, nil
	case PolicyPerfect:
		return core.PerfectOracle{Advisor: s.Board}, nil
	case PolicyFaulty:
		return &core.FaultyOracle{P: cfg.FaultyP, Advisor: s.Board, Rng: s.Kernel.Rand()}, nil
	case PolicyLearning:
		return core.NewLearningOracle(s.Kernel.Rand()), nil
	case PolicyCostAware:
		return core.NewCostAwareOracle(core.CostAwareConfig{
			Ckpt:     s.ckptModel(),
			HarmRate: harmRateFn(cfg.HarmRates),
			Window:   cfg.EstimatorWindow,
		}), nil
	case PolicyFixedMicro:
		return &core.FixedActionOracle{Mode: core.FixedMicro}, nil
	case PolicyFixedProcess:
		return &core.FixedActionOracle{Mode: core.FixedProcess}, nil
	case PolicyFixedCkpt:
		return &core.FixedActionOracle{Mode: core.FixedCkpt, Ckpt: s.ckptModel()}, nil
	default:
		return nil, fmt.Errorf("mercury: unknown policy %v", cfg.Policy)
	}
}

// ckptModel adapts the optional checkpoint manager to the oracle's
// interface without the typed-nil trap.
func (s *System) ckptModel() core.CheckpointModel {
	if s.Ckpt == nil {
		return nil
	}
	return s.Ckpt
}

// harmRateFn builds the oracle's harm-rate lookup: exact component first,
// then a dotted sub's hosting process, then 1.
func harmRateFn(rates map[string]float64) func(string) float64 {
	if rates == nil {
		return nil
	}
	return func(c string) float64 {
		if v, ok := rates[c]; ok {
			return v
		}
		if i := strings.IndexByte(c, '.'); i >= 0 {
			if v, ok := rates[c[:i]]; ok {
				return v
			}
		}
		return 1
	}
}

// Components returns the station component names (excluding FD/REC/ops).
func (s *System) Components() []string {
	out := make([]string, len(s.components))
	copy(out, s.components)
	return out
}

// Boot starts the station (one whole-system start), waits until every
// component serves, then starts FD and REC. It advances simulated time.
func (s *System) Boot() error {
	return BootAll(s.Kernel, []*System{s})
}

// BootAll boots several systems sharing one kernel with a single
// interleaved whole-system start: every station's ops and component
// batches are started, the shared kernel steps until all stations serve,
// then every FD/REC pair starts and the kernel settles for 2 s. For one
// system this executes exactly the historical Boot sequence, so golden
// traces are unaffected; for a shard hosting many stations it is the only
// correct way to boot (per-system Boot would wind the shared clock forward
// under the later stations).
func BootAll(k *sim.Kernel, systems []*System) error {
	if len(systems) == 0 {
		return nil
	}
	for _, s := range systems {
		if s.booted {
			return errors.New("mercury: already booted")
		}
		if s.Kernel != k {
			return errors.New("mercury: BootAll systems must share the kernel")
		}
	}
	for _, s := range systems {
		if err := s.Mgr.Start(station.Ops); err != nil {
			return err
		}
		if err := s.Mgr.StartBatch(s.components); err != nil {
			return err
		}
	}
	allServing := func() bool {
		for _, s := range systems {
			if !s.Mgr.AllServing(s.components...) {
				return false
			}
		}
		return true
	}
	deadline := k.Now().Add(3 * time.Minute)
	for !allServing() {
		if k.Now().After(deadline) {
			for _, s := range systems {
				if !s.Mgr.AllServing(s.components...) {
					return fmt.Errorf("mercury: boot did not complete: %s", s.describe())
				}
			}
		}
		if !k.Step() {
			return errors.New("mercury: simulation idle during boot")
		}
	}
	for _, s := range systems {
		if _, err := s.Mgr.State(FDName); err == nil {
			if err := s.Mgr.StartBatch([]string{FDName, RECName}); err != nil {
				return err
			}
		}
	}
	if err := k.RunFor(2 * time.Second); err != nil {
		return err
	}
	for _, s := range systems {
		s.armed = false
		s.booted = true
	}
	return nil
}

// describe renders the component states for error messages, in sorted
// component order so equal system states always produce equal strings.
func (s *System) describe() string {
	names := make([]string, len(s.components))
	copy(names, s.components)
	sort.Strings(names)
	var sb strings.Builder
	for i, c := range names {
		if i > 0 {
			sb.WriteByte(' ')
		}
		st, _ := s.Mgr.State(c)
		fmt.Fprintf(&sb, "%s=%s", c, st)
	}
	return sb.String()
}

// Inject activates a fault without waiting for recovery.
func (s *System) Inject(f Fault) error {
	if !s.booted {
		return ErrNotBooted
	}
	return s.Board.Inject(fault.Fault{Manifest: f.Component, Cure: f.Cure, Hard: f.Hard, Hang: f.Hang, StateKey: f.StateKey})
}

// MeasureRecovery injects a fault and runs the simulation until the system
// recovers (all components serving, no active fault), returning the
// paper's time-to-recover: failure instant → system functionally ready.
func (s *System) MeasureRecovery(f Fault, limit time.Duration) (time.Duration, error) {
	if !s.booted {
		return 0, ErrNotBooted
	}
	start := s.Kernel.Now()
	if err := s.Inject(f); err != nil {
		return 0, err
	}
	deadline := start.Add(limit)
	for s.armed || s.Board.ActiveCount() > 0 {
		if s.Kernel.Now().After(deadline) {
			return 0, fmt.Errorf("%w: %s", ErrNoRecovery, s.describe())
		}
		if !s.Kernel.Step() {
			return 0, errors.New("mercury: simulation idle before recovery")
		}
	}
	d, ok := s.Log.LastRecovery()
	if !ok {
		return 0, errors.New("mercury: recovery not recorded in trace")
	}
	return d, nil
}

// Recovered reports whether the station is currently whole: no failure is
// outstanding and no injected fault is active. Fleet campaigns poll this
// between epochs instead of stepping the kernel directly (the epoch
// scheduler owns the clock there).
func (s *System) Recovered() bool {
	return !s.armed && s.Board.ActiveCount() == 0
}

// SetChaos installs (or clears, with nil) the fabric-wide bus chaos
// profile. Installing it after Boot degrades the network only once the
// station is up — the usual shape for availability-vs-loss experiments.
func (s *System) SetChaos(p *bus.ChaosProfile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.Bus.SetChaos(p)
	return nil
}

// RunFor advances simulated time (idle operation, pings, telemetry).
func (s *System) RunFor(d time.Duration) error { return s.Kernel.RunFor(d) }

// Now returns the current simulated time.
func (s *System) Now() time.Time { return s.Kernel.Now() }
